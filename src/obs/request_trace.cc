#include "obs/request_trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/access_log.h"

namespace surveyor {
namespace obs {

namespace internal {
namespace {

/// The request being served on this thread. Requests are handled
/// single-threaded (admin accept loop), so thread-local is the whole
/// propagation mechanism — no cross-thread handoff exists on this path.
thread_local RequestContext* tls_request_context = nullptr;

}  // namespace

RequestContext* CurrentRequestContext() { return tls_request_context; }

}  // namespace internal

namespace {

/// Longest request target retained on traces and access-log entries; a
/// hostile query string must not balloon the rings.
constexpr size_t kMaxTargetBytes = 256;

double UnixSecondsNow() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string_view PathOnly(std::string_view target) {
  const size_t query = target.find('?');
  return query == std::string_view::npos ? target : target.substr(0, query);
}

}  // namespace

RequestTracer::RequestTracer(RequestTracerOptions options)
    : options_(options) {
  MutexLock lock(mutex_);
  ring_.reserve(options_.ring_capacity);
}

bool RequestTracer::SampleDecision(uint64_t trace_id, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // splitmix64 finalizer: sequential trace ids decorrelate into a uniform
  // 64-bit hash, so the decision is deterministic per id yet the sampled
  // fraction converges to `rate`.
  uint64_t x = trace_id + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(x >> 11) * 0x1.0p-53 < rate;
}

void RequestTracer::Keep(RequestTrace trace) {
  MutexLock lock(mutex_);
  if (options_.ring_capacity == 0) return;
  kept_.fetch_add(1, std::memory_order_relaxed);
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(std::move(trace));
    return;
  }
  ring_[next_slot_] = std::move(trace);
  next_slot_ = (next_slot_ + 1) % options_.ring_capacity;
  evicted_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<RequestTrace> RequestTracer::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<RequestTrace> traces;
  traces.reserve(ring_.size());
  // Newest first: the slot before next_slot_ holds the latest insert once
  // the ring has wrapped; before that, inserts are in push_back order.
  const size_t n = ring_.size();
  const size_t newest =
      n < options_.ring_capacity ? n : next_slot_ + options_.ring_capacity;
  for (size_t i = 0; i < n; ++i) {
    traces.push_back(ring_[(newest - 1 - i + n) % n]);
  }
  return traces;
}

void RequestTracer::Clear() {
  MutexLock lock(mutex_);
  ring_.clear();
  next_slot_ = 0;
}

void RequestTracer::CountRequest(bool sampled, bool slow) {
  started_.fetch_add(1, std::memory_order_relaxed);
  if (sampled) sampled_.fetch_add(1, std::memory_order_relaxed);
  if (slow) slow_.fetch_add(1, std::memory_order_relaxed);
}

void RequestTracer::AppendPrometheusText(std::string* out) const {
  const struct {
    const char* name;
    const char* help;
    int64_t value;
  } series[] = {
      {"surveyor_trace_requests_total",
       "Requests seen by the request tracer.", requests_started()},
      {"surveyor_trace_requests_sampled_total",
       "Requests retained by head sampling.", requests_sampled()},
      {"surveyor_trace_requests_slow_total",
       "Requests retained by the slow-query threshold.", requests_slow()},
      {"surveyor_traces_kept_total", "Traces retained in the /tracez ring.",
       traces_kept()},
      {"surveyor_traces_evicted_total",
       "Retained traces overwritten by newer ones.", traces_evicted()},
  };
  for (const auto& s : series) {
    *out += "# HELP " + std::string(s.name) + " " + s.help + "\n";
    *out += "# TYPE " + std::string(s.name) + " counter\n";
    *out += std::string(s.name) + " " + std::to_string(s.value) + "\n";
  }
}

namespace {

std::string RootSpanName(std::string_view method, std::string_view target) {
  std::string_view path = PathOnly(target);
  if (path.size() > kMaxTargetBytes) path = path.substr(0, kMaxTargetBytes);
  std::string name;
  name.reserve(method.size() + 1 + path.size());
  name.append(method);
  name.push_back(' ');
  name.append(path);
  return name;
}

internal::RequestContext MakeContext(RequestTracer* tracer,
                                     AccessLog* access_log,
                                     std::string_view method,
                                     std::string_view target) {
  internal::RequestContext context;
  context.tracer = tracer;
  context.access_log = access_log;
  context.start = std::chrono::steady_clock::now();
  context.trace.method.assign(method);
  context.trace.target.assign(target.substr(
      0, std::min<size_t>(target.size(), kMaxTargetBytes)));
  context.trace.start_unix_seconds = UnixSecondsNow();
  if (tracer != nullptr) {
    context.trace.trace_id = tracer->NextTraceId();
    context.trace.sampled = RequestTracer::SampleDecision(
        context.trace.trace_id, tracer->options().sample_rate);
    context.recording = tracer->armed();
    context.max_spans = tracer->options().max_spans_per_trace;
    context.slow_threshold_seconds =
        tracer->options().slow_threshold_seconds;
    if (context.recording) {
      context.trace.spans.reserve(
          std::min<size_t>(context.max_spans, 16));
    }
  }
  return context;
}

}  // namespace

RequestScope::ContextInstaller::ContextInstaller(
    internal::RequestContext* context)
    : previous(internal::tls_request_context) {
  internal::tls_request_context = context;
}

RequestScope::ContextInstaller::~ContextInstaller() {
  internal::tls_request_context = previous;
}

RequestScope::RequestScope(RequestTracer* tracer, AccessLog* access_log,
                           std::string_view method, std::string_view target)
    : context_(MakeContext(tracer, access_log, method, target)),
      installer_(&context_),
      root_span_(RootSpanName(method, target)),
      endpoint_(PathOnly(context_.trace.target)) {}

RequestScope::~RequestScope() {
  // Close the root span while the context is still installed, so it lands
  // in the request-local buffer like every child span.
  root_span_.End();
  RequestTrace& trace = context_.trace;
  trace.duration_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               context_.start)
                               .count();
  trace.slow = context_.slow_threshold_seconds > 0.0 &&
               trace.duration_seconds >= context_.slow_threshold_seconds;
  if (context_.access_log != nullptr) {
    AccessLogEntry entry;
    entry.unix_seconds = trace.start_unix_seconds;
    entry.method = trace.method;
    entry.target = trace.target;
    entry.endpoint = endpoint_;
    entry.status = trace.status;
    entry.response_bytes = trace.response_bytes;
    entry.latency_seconds = trace.duration_seconds;
    entry.trace_id = trace.trace_id;
    entry.sampled = trace.sampled || trace.slow;
    entry.slow = trace.slow;
    entry.stats = trace.stats;
    context_.access_log->Append(std::move(entry));
  }
  if (context_.tracer != nullptr) {
    context_.tracer->CountRequest(trace.sampled, trace.slow);
    if (trace.sampled || trace.slow) {
      context_.tracer->Keep(std::move(trace));
    }
  }
}

RequestStats* CurrentRequestStats() {
  internal::RequestContext* context = internal::CurrentRequestContext();
  return context == nullptr ? nullptr : &context->trace.stats;
}

uint64_t CurrentTraceId() {
  internal::RequestContext* context = internal::CurrentRequestContext();
  return context == nullptr ? 0 : context->trace.trace_id;
}

void ForceSampleCurrentRequest() {
  internal::RequestContext* context = internal::CurrentRequestContext();
  if (context != nullptr) context->trace.sampled = true;
}

uint64_t CurrentSampledTraceId() {
  internal::RequestContext* context = internal::CurrentRequestContext();
  if (context == nullptr || !context->trace.sampled) return 0;
  return context->trace.trace_id;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buffer, 16);
}

}  // namespace obs
}  // namespace surveyor
