#ifndef SURVEYOR_OBS_TRACE_H_
#define SURVEYOR_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

namespace internal {
struct RequestContext;
}  // namespace internal

/// One completed tracing span. Times are relative to the tracer epoch
/// (the last Clear()), so a run report is self-contained.
struct TraceSpan {
  uint64_t id = 0;
  /// 0 for a root span.
  uint64_t parent_id = 0;
  std::string name;
  /// Small per-process thread index (CurrentThreadIndex()).
  uint32_t thread_index = 0;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// A span that has started but not yet ended — the live call stack the
/// admin server's /statusz shows per thread while a run is in flight.
struct ActiveSpan {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::string name;
  uint32_t thread_index = 0;
  /// Seconds since the tracer epoch at which the span started.
  double start_seconds = 0.0;
};

/// Bounded in-memory span buffer. Disabled by default: a SURVEYOR_SPAN in
/// a hot loop costs one relaxed atomic load until tracing is switched on.
/// Spans above the capacity are dropped and counted, never reallocated —
/// tracing a web-scale run must not grow memory without bound.
class Tracer {
 public:
  /// The process-wide tracer used by SURVEYOR_SPAN.
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Maximum buffered spans (default 16384); takes effect immediately.
  void SetCapacity(size_t capacity) SURVEYOR_EXCLUDES(mutex_);

  /// Drops all buffered spans, resets ids, the drop counter and the epoch.
  void Clear() SURVEYOR_EXCLUDES(mutex_);

  /// Copies the buffered spans, ordered by start time (ties by id), so
  /// parents precede their children.
  std::vector<TraceSpan> Snapshot() const SURVEYOR_EXCLUDES(mutex_);

  /// Spans discarded because the buffer was full since the last Clear().
  int64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Spans currently live (started, not ended), ordered by thread index
  /// then start time — per-thread entries read as innermost-last stacks.
  std::vector<ActiveSpan> ActiveSpans() const SURVEYOR_EXCLUDES(mutex_);

  // --- Used by ScopedSpan; not part of the public surface. ---
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void Record(TraceSpan span) SURVEYOR_EXCLUDES(mutex_);
  void RegisterActive(ActiveSpan span) SURVEYOR_EXCLUDES(mutex_);
  void UnregisterActive(uint64_t id) SURVEYOR_EXCLUDES(mutex_);
  std::chrono::steady_clock::time_point epoch() const
      SURVEYOR_EXCLUDES(mutex_);

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> dropped_{0};
  mutable Mutex mutex_;
  size_t capacity_ SURVEYOR_GUARDED_BY(mutex_) = 16384;
  std::vector<TraceSpan> spans_ SURVEYOR_GUARDED_BY(mutex_);
  /// Live spans keyed by id; bounded by the number of concurrently open
  /// scopes, which is O(threads × nesting depth).
  std::vector<ActiveSpan> active_ SURVEYOR_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point epoch_ SURVEYOR_GUARDED_BY(mutex_) =
      std::chrono::steady_clock::now();
};

/// The innermost live span id on this thread (0 when none). Capture it on
/// the submitting thread and pass it to ScopedSpan on a worker thread to
/// keep parent linkage across thread boundaries.
uint64_t CurrentSpanId();

/// RAII span: records wall time, thread index and parent linkage into the
/// global tracer — or, while a RequestScope is live on this thread, into
/// that request's local span buffer (no global lock, start times relative
/// to the request start). When neither is active the constructor is one
/// thread-local read plus one atomic load and nothing else runs.
class ScopedSpan {
 public:
  /// Parent is the innermost live span of the current thread.
  explicit ScopedSpan(std::string_view name);
  /// Explicit parent, for spans that start on a different thread than the
  /// logical parent (e.g. extraction shards under the "extract" span).
  ScopedSpan(std::string_view name, uint64_t parent_id);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early (idempotent); the destructor becomes a no-op.
  void End();

  /// Seconds since construction (after End(): the final duration).
  /// 0 when the span is not recording (tracing disabled at construction).
  double ElapsedSeconds() const;

  /// This span's id (0 when not recording).
  uint64_t id() const { return id_; }

 private:
  void Start(std::string_view name, uint64_t parent_id);

  bool recording_ = false;
  bool restore_parent_ = false;
  /// The request this span belongs to; nullptr for global-tracer spans.
  internal::RequestContext* request_ = nullptr;
  uint64_t id_ = 0;
  uint64_t saved_parent_ = 0;
  uint64_t parent_id_for_record_ = 0;
  double final_seconds_ = 0.0;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Scoped tracing session: clears the global tracer, enables it, and
/// restores the previous enabled state on destruction. One pipeline run =
/// one session; concurrent sessions interleave into the same buffer.
class TraceSession {
 public:
  explicit TraceSession(Tracer& tracer = Tracer::Global());
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  std::vector<TraceSpan> Snapshot() const { return tracer_->Snapshot(); }
  int64_t dropped_spans() const { return tracer_->dropped_spans(); }

 private:
  Tracer* tracer_;
  bool previous_enabled_;
};

}  // namespace obs
}  // namespace surveyor

#define SURVEYOR_SPAN_CONCAT_INNER(a, b) a##b
#define SURVEYOR_SPAN_CONCAT(a, b) SURVEYOR_SPAN_CONCAT_INNER(a, b)

/// Declares an RAII tracing span covering the rest of the scope:
///   SURVEYOR_SPAN("extract.shard");
#define SURVEYOR_SPAN(name) \
  ::surveyor::obs::ScopedSpan SURVEYOR_SPAN_CONCAT(_surveyor_span_, \
                                                   __LINE__)(name)

#endif  // SURVEYOR_OBS_TRACE_H_
