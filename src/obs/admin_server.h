#ifndef SURVEYOR_OBS_ADMIN_SERVER_H_
#define SURVEYOR_OBS_ADMIN_SERVER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/access_log.h"
#include "obs/http_server.h"
#include "obs/log_ring.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/stage.h"
#include "util/status.h"

namespace surveyor {
namespace obs {

class JsonWriter;

/// Configuration of the embedded admin HTTP server.
struct AdminServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (port() reports the
  /// one actually bound — used by tests).
  int port = 0;
  /// Admin planes are debugging surfaces, not public APIs: bind loopback
  /// only unless the operator explicitly opens it up.
  std::string bind_address = "127.0.0.1";
  /// Maximum log lines /logz returns (newest kept).
  size_t max_log_lines = 100;
  /// Head-sampling rate in [0, 1] for request traces (--trace-sample-rate).
  double trace_sample_rate = 0.01;
  /// Requests slower than this are trace-captured regardless of sampling
  /// (--slow-query-ms); <= 0 disables tail capture.
  double slow_query_ms = 250.0;
  /// Retained traces the /tracez ring holds.
  size_t trace_ring_capacity = 64;
  /// Entries the /requestz access-log ring holds; 0 disables the access
  /// log (no entries, no per-endpoint counters).
  size_t access_log_capacity = 512;
  /// Registry the profiler folds its sample counters into after a
  /// /profilez window (not owned, may be null). Usually the same live
  /// registry the server scrapes, but the server's own `registry` is
  /// const, so a writable alias is injected explicitly. The serving
  /// tier's transport metrics (connection gauge, queue depth, shed
  /// count) land in the same registry.
  MetricRegistry* profiler_metrics = nullptr;
  /// Event-loop threads in the underlying HttpServer (--serve-workers).
  int serve_workers = 2;
  /// Handler-pool threads executing endpoint logic.
  int handler_threads = 4;
  /// Open-connection cap (--max-connections); excess connections are
  /// answered 503 and closed.
  size_t max_connections = 512;
  /// Admission control (--queue-high-water): requests arriving past this
  /// queue depth are shed with 429 + Retry-After.
  size_t queue_high_water = 128;
  /// Keep-alive connections idle longer than this are closed (partial
  /// requests get 408); <= 0 disables the sweep.
  double idle_timeout_seconds = 30.0;
  /// Graceful-shutdown budget for draining in-flight requests.
  double drain_seconds = 5.0;
};

/// One materialized HTTP response, exposed so tests can exercise the
/// endpoint logic without a socket. An alias for the transport's
/// HttpResponse so handlers can attach extra headers (Deprecation,
/// Retry-After) that the event loop writes verbatim.
using AdminResponse = HttpResponse;

/// An application endpoint mounted on the admin server (see AddHandler).
/// `target` is the full request target (path + query string), `body` the
/// request body ("" for GET). Handlers run on the server's handler pool —
/// several may execute concurrently — and must be thread-safe with
/// respect to the application state they read.
using AdminHandler = std::function<AdminResponse(
    std::string_view method, std::string_view target, std::string_view body)>;

/// One application section on /statusz (see AddStatusSection). The
/// function writes exactly one JSON value (usually an object) as the
/// section's content; it runs on a handler thread and must be
/// thread-safe with respect to the state it reads.
using StatusSection = std::function<void(JsonWriter&)>;

/// Runs at the start of every /metrics scrape (see AddMetricsHook) —
/// the place to refresh gauges whose value is a function of "now", like
/// the serving generation's age.
using MetricsHook = std::function<void()>;

/// Embedded HTTP/1.1 admin and serving plane, mounted on the epoll
/// multi-worker HttpServer (DESIGN.md §15): the live observability
/// state of this process plus the /v1 query API — the laptop-scale
/// version of the per-node status pages the deployed Surveyor
/// aggregated across 5000 machines, in the pull-based exposition style
/// modern pipelines scrape.
///
/// Endpoints:
///   /metrics       Prometheus text: the registry + log counters
///   /metrics.json  the registry as JSON
///   /healthz       liveness — 200 whenever the process can answer
///   /readyz        readiness — 200 once the stage machine reaches
///                  serving/done, 503 (with the stage name) before
///   /statusz       JSON snapshot: stage, stage seconds, uptime, live
///                  span stack per thread, log counters
///   /logz          recent log lines from the LogRing
///   /tracez        retained request traces as span trees (?format=text)
///   /requestz      recent access-log entries (?slowest=N)
///   /profilez      on-demand CPU profile: samples the process for
///                  ?seconds=N (default 1, max 30) and answers folded
///                  stacks (?format=folded, flamegraph.pl-ready) or JSON
///                  with the per-stage attribution table (?format=json).
///                  One profile at a time (409 while one runs); 501 on
///                  sanitizer builds. Blocks one handler thread for the
///                  window — other endpoints keep answering.
///
/// Every request runs under an obs::RequestScope: it gets a trace id,
/// lands in the access log (feeding the per-endpoint counters on
/// /metrics), and — when head-sampled or over the slow-query threshold —
/// leaves its span tree on /tracez.
///
/// Requests arrive concurrently: the event loop parses them off
/// keep-alive connections and a handler pool executes the endpoints, so
/// every handler (and status section) must be thread-safe. Overload is
/// explicit — past the queue high-water mark requests are shed with 429
/// before any endpoint code runs (see HttpServerOptions).
class AdminServer {
 public:
  /// None of the dependencies are owned; all must outlive the server.
  /// `stage` and `log_ring` may be null (readyz then reports 200 "ok" and
  /// /logz is empty).
  AdminServer(const MetricRegistry* registry, const StageTracker* stage,
              const LogRing* log_ring, AdminServerOptions options = {});

  /// Stops the server if still running.
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens and starts the serving tier (listener, worker event
  /// loops, handler pool). Fails with InvalidArgument/Internal when the
  /// port cannot be bound.
  Status Start();

  /// Graceful shutdown: stops accepting, drains in-flight requests (up
  /// to options.drain_seconds), flushes responses, closes. Idempotent.
  void Stop();

  /// The port actually bound (useful with options.port == 0); 0 before
  /// Start().
  int port() const { return port_; }

  /// Mounts `handler` on every path equal to `prefix` or under it
  /// ("/query" also matches "/query/batch"). Longest registered prefix
  /// wins; registered paths shadow the builtins. Handlers decide their
  /// own method policy (this is how POST endpoints exist on an otherwise
  /// GET-only plane). Must be called before Start(); not thread-safe
  /// against a running server.
  void AddHandler(std::string prefix, AdminHandler handler);

  /// Appends an application-owned section to /statusz under `key`
  /// ("generation": {...}). Sections render in registration order, after
  /// the builtin fields. Must be called before Start().
  void AddStatusSection(std::string key, StatusSection section);

  /// Registers a hook invoked at the start of every /metrics and
  /// /metrics.json scrape, before the registry renders. Must be called
  /// before Start().
  void AddMetricsHook(MetricsHook hook);

  /// Pure request dispatch: `target` is the request path plus optional
  /// query string, `body` the request body. Exposed for tests.
  AdminResponse Handle(std::string_view method, std::string_view target,
                       std::string_view body) const;

  /// Body-less convenience overload (the shape every GET test uses).
  AdminResponse Handle(std::string_view method, std::string_view target) const {
    return Handle(method, target, "");
  }

  /// The tracer behind /tracez; exposed so tests and benches can inspect
  /// retained traces without scraping.
  RequestTracer& request_tracer() const { return request_tracer_; }

  /// The access log behind /requestz.
  AccessLog& access_log() const { return access_log_; }

 private:
  /// Handler/builtin dispatch, running inside `scope`; sets the scope's
  /// normalized endpoint for the per-endpoint counters.
  AdminResponse Dispatch(std::string_view method, std::string_view target,
                         std::string_view body, RequestScope* scope) const;

  AdminResponse MetricsText() const;
  AdminResponse MetricsJson() const;
  AdminResponse Healthz() const;
  AdminResponse Readyz() const;
  AdminResponse Statusz() const;
  AdminResponse Logz() const;
  AdminResponse Tracez(std::string_view target) const;
  AdminResponse Requestz(std::string_view target) const;
  AdminResponse Profilez(std::string_view target) const;
  AdminResponse Index() const;

  const MetricRegistry* registry_;
  const StageTracker* stage_;
  const LogRing* log_ring_;
  AdminServerOptions options_;
  /// Internally synchronized; mutable because Handle() is const yet every
  /// request appends to them.
  mutable RequestTracer request_tracer_;
  mutable AccessLog access_log_;
  /// Registered application endpoints, (prefix, handler). Immutable once
  /// the server starts.
  std::vector<std::pair<std::string, AdminHandler>> handlers_;
  /// Application /statusz sections, (key, writer). Immutable once the
  /// server starts.
  std::vector<std::pair<std::string, StatusSection>> status_sections_;
  /// Scrape-time gauge refreshers. Immutable once the server starts.
  std::vector<MetricsHook> metrics_hooks_;

  /// The serving tier; non-null exactly while started.
  std::unique_ptr<HttpServer> http_;
  int port_ = 0;
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_ADMIN_SERVER_H_
