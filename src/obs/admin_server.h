#ifndef SURVEYOR_OBS_ADMIN_SERVER_H_
#define SURVEYOR_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/access_log.h"
#include "obs/log_ring.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/stage.h"
#include "util/status.h"

namespace surveyor {
namespace obs {

class JsonWriter;

/// Configuration of the embedded admin HTTP server.
struct AdminServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (port() reports the
  /// one actually bound — used by tests).
  int port = 0;
  /// Admin planes are debugging surfaces, not public APIs: bind loopback
  /// only unless the operator explicitly opens it up.
  std::string bind_address = "127.0.0.1";
  /// Maximum log lines /logz returns (newest kept).
  size_t max_log_lines = 100;
  /// Head-sampling rate in [0, 1] for request traces (--trace-sample-rate).
  double trace_sample_rate = 0.01;
  /// Requests slower than this are trace-captured regardless of sampling
  /// (--slow-query-ms); <= 0 disables tail capture.
  double slow_query_ms = 250.0;
  /// Retained traces the /tracez ring holds.
  size_t trace_ring_capacity = 64;
  /// Entries the /requestz access-log ring holds; 0 disables the access
  /// log (no entries, no per-endpoint counters).
  size_t access_log_capacity = 512;
  /// Registry the profiler folds its sample counters into after a
  /// /profilez window (not owned, may be null). Usually the same live
  /// registry the server scrapes, but the server's own `registry` is
  /// const, so a writable alias is injected explicitly.
  MetricRegistry* profiler_metrics = nullptr;
};

/// One materialized HTTP response, exposed so tests can exercise the
/// endpoint logic without a socket.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// An application endpoint mounted on the admin server (see AddHandler).
/// `target` is the full request target (path + query string), `body` the
/// request body ("" for GET). The handler runs on the accept thread and
/// must be thread-safe with respect to the application state it reads.
using AdminHandler = std::function<AdminResponse(
    std::string_view method, std::string_view target, std::string_view body)>;

/// One application section on /statusz (see AddStatusSection). The
/// function writes exactly one JSON value (usually an object) as the
/// section's content; it runs on the accept thread and must be
/// thread-safe with respect to the state it reads.
using StatusSection = std::function<void(JsonWriter&)>;

/// Runs at the start of every /metrics scrape (see AddMetricsHook) —
/// the place to refresh gauges whose value is a function of "now", like
/// the serving generation's age.
using MetricsHook = std::function<void()>;

/// Dependency-free embedded HTTP/1.0 admin server: one blocking
/// accept-loop thread serving the live observability state of this
/// process — the laptop-scale version of the per-node status pages the
/// deployed Surveyor aggregated across 5000 machines, in the pull-based
/// exposition style modern pipelines scrape.
///
/// Endpoints:
///   /metrics       Prometheus text: the registry + log counters
///   /metrics.json  the registry as JSON
///   /healthz       liveness — 200 whenever the process can answer
///   /readyz        readiness — 200 once the stage machine reaches
///                  serving/done, 503 (with the stage name) before
///   /statusz       JSON snapshot: stage, stage seconds, uptime, live
///                  span stack per thread, log counters
///   /logz          recent log lines from the LogRing
///   /tracez        retained request traces as span trees (?format=text)
///   /requestz      recent access-log entries (?slowest=N)
///   /profilez      on-demand CPU profile: samples the process for
///                  ?seconds=N (default 1, max 30) and answers folded
///                  stacks (?format=folded, flamegraph.pl-ready) or JSON
///                  with the per-stage attribution table (?format=json).
///                  One profile at a time (409 while one runs); 501 on
///                  sanitizer builds. Blocks the admin thread for the
///                  window — deliberate on a single-scraper plane.
///
/// Every request runs under an obs::RequestScope: it gets a trace id,
/// lands in the access log (feeding the per-endpoint counters on
/// /metrics), and — when head-sampled or over the slow-query threshold —
/// leaves its span tree on /tracez.
///
/// Requests are handled sequentially on the accept thread; every response
/// closes the connection (HTTP/1.0 semantics). That is deliberate — an
/// admin plane serves one scraper and the occasional curl, and a single
/// thread cannot be wedged into unbounded concurrency by a misbehaving
/// client.
class AdminServer {
 public:
  /// None of the dependencies are owned; all must outlive the server.
  /// `stage` and `log_ring` may be null (readyz then reports 200 "ok" and
  /// /logz is empty).
  AdminServer(const MetricRegistry* registry, const StageTracker* stage,
              const LogRing* log_ring, AdminServerOptions options = {});

  /// Stops the server if still running.
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens and starts the accept thread. Fails with
  /// InvalidArgument/Internal when the port cannot be bound.
  Status Start();

  /// Graceful shutdown: unblocks the accept loop (shutdown() on the
  /// listening socket plus a self-connect fallback) and joins the thread.
  /// Idempotent.
  void Stop();

  /// The port actually bound (useful with options.port == 0); 0 before
  /// Start().
  int port() const { return port_; }

  /// Mounts `handler` on every path equal to `prefix` or under it
  /// ("/query" also matches "/query/batch"). Longest registered prefix
  /// wins; registered paths shadow the builtins. Handlers decide their
  /// own method policy (this is how POST endpoints exist on an otherwise
  /// GET-only plane). Must be called before Start(); not thread-safe
  /// against a running server.
  void AddHandler(std::string prefix, AdminHandler handler);

  /// Appends an application-owned section to /statusz under `key`
  /// ("generation": {...}). Sections render in registration order, after
  /// the builtin fields. Must be called before Start().
  void AddStatusSection(std::string key, StatusSection section);

  /// Registers a hook invoked at the start of every /metrics and
  /// /metrics.json scrape, before the registry renders. Must be called
  /// before Start().
  void AddMetricsHook(MetricsHook hook);

  /// Pure request dispatch: `target` is the request path plus optional
  /// query string, `body` the request body. Exposed for tests.
  AdminResponse Handle(std::string_view method, std::string_view target,
                       std::string_view body) const;

  /// Body-less convenience overload (the shape every GET test uses).
  AdminResponse Handle(std::string_view method, std::string_view target) const {
    return Handle(method, target, "");
  }

  /// The tracer behind /tracez; exposed so tests and benches can inspect
  /// retained traces without scraping.
  RequestTracer& request_tracer() const { return request_tracer_; }

  /// The access log behind /requestz.
  AccessLog& access_log() const { return access_log_; }

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd) const;

  /// Handler/builtin dispatch, running inside `scope`; sets the scope's
  /// normalized endpoint for the per-endpoint counters.
  AdminResponse Dispatch(std::string_view method, std::string_view target,
                         std::string_view body, RequestScope* scope) const;

  AdminResponse MetricsText() const;
  AdminResponse MetricsJson() const;
  AdminResponse Healthz() const;
  AdminResponse Readyz() const;
  AdminResponse Statusz() const;
  AdminResponse Logz() const;
  AdminResponse Tracez(std::string_view target) const;
  AdminResponse Requestz(std::string_view target) const;
  AdminResponse Profilez(std::string_view target) const;
  AdminResponse Index() const;

  const MetricRegistry* registry_;
  const StageTracker* stage_;
  const LogRing* log_ring_;
  AdminServerOptions options_;
  /// Internally synchronized; mutable because Handle() is const yet every
  /// request appends to them.
  mutable RequestTracer request_tracer_;
  mutable AccessLog access_log_;
  /// Registered application endpoints, (prefix, handler). Immutable once
  /// the accept thread starts.
  std::vector<std::pair<std::string, AdminHandler>> handlers_;
  /// Application /statusz sections, (key, writer). Immutable once the
  /// accept thread starts.
  std::vector<std::pair<std::string, StatusSection>> status_sections_;
  /// Scrape-time gauge refreshers. Immutable once the accept thread
  /// starts.
  std::vector<MetricsHook> metrics_hooks_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_ADMIN_SERVER_H_
