#ifndef SURVEYOR_OBS_HTTP_SERVER_H_
#define SURVEYOR_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

/// One materialized HTTP response. `headers` carries endpoint-specific
/// extras (Deprecation, Retry-After, Link) on top of the Content-Type /
/// Content-Length / Connection headers the transport always writes.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Application request handler. `target` is the full request target
/// (path + query string), `body` the request body ("" for GET). Handlers
/// run on the server's handler pool — several may run concurrently, so a
/// handler must be thread-safe with respect to the state it touches.
using HttpHandler = std::function<HttpResponse(
    std::string_view method, std::string_view target, std::string_view body)>;

/// Configuration of the epoll serving tier (DESIGN.md §15).
struct HttpServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (port() reports the
  /// one actually bound).
  int port = 0;
  std::string bind_address = "127.0.0.1";
  /// Event-loop threads owning connections and doing all socket I/O
  /// (--serve-workers).
  int num_workers = 2;
  /// Threads executing handlers off the bounded request queue. Slow
  /// endpoints (/profilez holds a multi-second window open) block one
  /// handler, never an event loop.
  int handler_threads = 4;
  /// Accepted-connection cap (--max-connections); connections over it are
  /// answered 503 and closed by the listener.
  size_t max_connections = 512;
  /// Admission control (--queue-high-water): a parsed request arriving
  /// while this many are already queued is shed with 429 + Retry-After
  /// instead of being enqueued.
  size_t queue_high_water = 128;
  /// Keep-alive connections idle longer than this are closed; a
  /// connection holding a partial request this long (slow loris) is
  /// answered 408 and closed. <= 0 disables the sweep.
  double idle_timeout_seconds = 30.0;
  /// Request head (request line + headers) larger than this is rejected
  /// with 431.
  size_t max_header_bytes = 8192;
  /// Request body larger than this is rejected with 413.
  size_t max_body_bytes = 1 << 20;
  /// Graceful-shutdown budget: Stop() waits up to this long for queued
  /// and executing requests to finish and flush before closing sockets.
  double drain_seconds = 5.0;
  /// Registry for the transport metrics (connection gauge, queue depth,
  /// shed count, ...). May be null: the server then keeps a private
  /// registry and the counters are simply not scrapeable.
  MetricRegistry* metrics = nullptr;
};

/// Dependency-free epoll-based multi-worker HTTP/1.1 server — the
/// serving tier under the admin plane and the /v1 query API:
///
///   - one listener thread doing edge-triggered accept and handing
///     connections to workers round-robin (503 over max_connections);
///   - N worker event loops, each owning its connections: incremental
///     request parsing, keep-alive with an idle-timeout sweep, bounded
///     write buffering with EPOLLOUT back-pressure, pipelined requests
///     answered in order;
///   - a bounded request queue feeding a handler pool, with admission
///     control: past the high-water mark parsed requests are shed with
///     429 + Retry-After (the connection stays alive), so overload
///     degrades into fast, explicit rejections instead of collapse;
///   - graceful shutdown: Stop() stops accepting, drains queued and
///     in-flight requests, flushes responses, then closes.
///
/// Protocol errors are explicit, never hangs: oversized head 431,
/// oversized body 413, malformed request line 400, chunked encoding 501,
/// slow-loris partial request 408 at the idle timeout.
class HttpServer {
 public:
  /// `handler` answers every request; it must stay valid until Stop().
  HttpServer(HttpHandler handler, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the listener, worker, and handler
  /// threads. Fails with InvalidArgument/Internal when the socket cannot
  /// be bound; Unimplemented off Linux (no epoll).
  Status Start();

  /// Graceful shutdown; idempotent. See class comment.
  void Stop();

  /// The port actually bound (useful with options.port == 0); 0 before
  /// Start().
  int port() const { return port_; }

  /// Live connection count across all workers (the connection gauge).
  size_t open_connections() const {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Requests shed with 429 by admission control so far.
  int64_t shed_count() const;

 private:
  class Worker;
  struct PendingRequest {
    int worker_index = 0;
    uint64_t connection_id = 0;
    std::string method;
    std::string target;
    std::string body;
    bool keep_alive = true;
  };

  /// Bounded MPMC queue between workers (producers) and the handler pool
  /// (consumers). TryPush refuses — admission control — at the
  /// high-water mark; Pop blocks and drains remaining items after
  /// Shutdown() before returning false.
  class RequestQueue {
   public:
    RequestQueue(size_t high_water, Gauge* depth_gauge)
        : high_water_(high_water), depth_gauge_(depth_gauge) {}

    bool TryPush(PendingRequest&& request);
    bool Pop(PendingRequest* out);
    void Shutdown();

   private:
    const size_t high_water_;
    Gauge* const depth_gauge_;
    Mutex mutex_;
    std::condition_variable_any cv_;
    std::deque<PendingRequest> queue_ SURVEYOR_GUARDED_BY(mutex_);
    bool shutdown_ SURVEYOR_GUARDED_BY(mutex_) = false;
  };

  void ListenerLoop();
  void HandlerLoop();
  /// Drops the open-connection count and gauge by one (a connection
  /// closed or was refused at the cap).
  void ReleaseConnection();

  HttpHandler handler_;
  HttpServerOptions options_;
  /// Owned fallback when options_.metrics is null.
  std::unique_ptr<MetricRegistry> owned_metrics_;
  MetricRegistry* metrics_ = nullptr;

  Counter* accepted_total_ = nullptr;
  Counter* rejected_connections_total_ = nullptr;
  Counter* requests_total_ = nullptr;
  Counter* shed_total_ = nullptr;
  Counter* parse_errors_total_ = nullptr;
  Counter* idle_timeouts_total_ = nullptr;
  Gauge* connections_gauge_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;

  std::unique_ptr<RequestQueue> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> handler_pool_;
  std::thread listener_thread_;

  int listen_fd_ = -1;
  int listener_wake_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> draining_{false};
  /// Requests admitted to the queue or executing, not yet handed back to
  /// their worker — what Stop() waits on.
  std::atomic<int64_t> inflight_{0};
  std::atomic<size_t> connections_{0};
  std::atomic<size_t> next_worker_{0};

  friend class Worker;
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_HTTP_SERVER_H_
