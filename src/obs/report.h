#ifndef SURVEYOR_OBS_REPORT_H_
#define SURVEYOR_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace surveyor {
namespace obs {

/// Fit-quality summary of one property-type EM fit, for the run report's
/// misfit ranking (the quality-control instrument for a system that fits
/// hundreds of thousands of pairs unsupervised).
struct EmFitDiagnostics {
  std::string type_name;
  std::string property;
  int64_t total_statements = 0;
  int iterations = 0;
  bool converged = true;
  double log_likelihood = 0.0;
  double aic = 0.0;
  double chi2_positive = 0.0;
  double chi2_negative = 0.0;

  double worst_chi2() const {
    return chi2_positive > chi2_negative ? chi2_positive : chi2_negative;
  }
};

/// Aggregate EM diagnostics across every fitted pair, plus the worst fits
/// by chi-square so an operator can eyeball the pairs the two-Poisson
/// mixture describes worst.
struct EmAggregateDiagnostics {
  int64_t fits = 0;
  int64_t converged = 0;
  int64_t total_iterations = 0;
  double total_log_likelihood = 0.0;
  double max_chi2 = 0.0;
  double sum_worst_chi2 = 0.0;
  /// Worst fits by worst_chi2(), descending; at most `max_worst_fits`.
  std::vector<EmFitDiagnostics> worst_fits;
  int max_worst_fits = 10;

  void Add(EmFitDiagnostics fit);
  double mean_iterations() const {
    return fits > 0 ? static_cast<double>(total_iterations) / fits : 0.0;
  }
  double mean_worst_chi2() const {
    return fits > 0 ? sum_worst_chi2 / fits : 0.0;
  }
};

/// One property-type pair that fell back to the smoothed-majority-vote
/// baseline instead of an EM fit.
struct DegradedPairInfo {
  std::string type_name;
  std::string property;
  /// Why the fit was abandoned ("injected fault: em_fit", "non-finite
  /// posterior", the fit error's message, ...).
  std::string reason;
};

/// Fault-handling summary of one run (DESIGN.md §9): every retry,
/// quarantined document, and degraded pair is accounted for here, in
/// /metrics, and in PipelineStats — three views of the same counters.
struct DegradationReport {
  /// True when anything below is non-zero or a truncation note exists.
  bool degraded = false;
  /// Recovered transient failures (document reads, MapReduce tasks).
  int64_t retries = 0;
  /// Fault-point firings during the run (0 outside chaos testing).
  int64_t faults_injected = 0;
  /// Documents dropped as corrupt instead of failing the run.
  int64_t docs_quarantined = 0;
  /// Pairs that fell back to the SMV baseline.
  int64_t pairs_degraded = 0;
  /// The degraded pairs, sorted by (type, property).
  std::vector<DegradedPairInfo> degraded_pairs;
  /// Human-readable warnings, e.g. a document source that ended with an
  /// error mid-stream (truncated corpus).
  std::vector<std::string> notes;
};

/// Machine-readable artifact of one pipeline run: every metric, the span
/// tree, per-stage seconds, EM diagnostics and a mirror of PipelineStats.
/// `surveyor_cli mine --report FILE` serializes it with ToJson().
struct RunReport {
  /// Free-form label (the CLI stores the workspace directory).
  std::string label;
  /// Stage wall times, keyed by span name ("extract", "group", "em").
  std::map<std::string, double> stage_seconds;
  /// Every metric of the run's registry, sorted by name.
  std::vector<MetricSnapshot> metrics;
  /// Completed spans ordered by start time; parent_id links the tree.
  std::vector<TraceSpan> spans;
  int64_t dropped_spans = 0;
  EmAggregateDiagnostics em;
  DegradationReport degradation;
  /// PipelineStats mirrored as name -> value, for exact cross-checking
  /// against the registry counters.
  std::map<std::string, double> pipeline_stats;

  /// Value of a metric by exact name; 0 when absent.
  double MetricValue(const std::string& name) const;

  /// Serializes the whole report as a JSON document.
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_REPORT_H_
