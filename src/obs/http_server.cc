#include "obs/http_server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <unordered_map>

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#define SURVEYOR_HAVE_EPOLL 1
#endif

#include "util/logging.h"

namespace surveyor {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    case 408:
      return "408 Request Timeout";
    case 409:
      return "409 Conflict";
    case 413:
      return "413 Payload Too Large";
    case 429:
      return "429 Too Many Requests";
    case 431:
      return "431 Request Header Fields Too Large";
    case 501:
      return "501 Not Implemented";
    case 503:
      return "503 Service Unavailable";
    default:
      return "500 Internal Server Error";
  }
}

/// Serializes a handler response to wire bytes. HEAD keeps the
/// Content-Length of the body it suppresses (RFC 9110 §9.3.2).
std::string SerializeResponse(const HttpResponse& response, bool keep_alive,
                              bool head) {
  std::string out;
  out.reserve(response.body.size() + 160);
  out += "HTTP/1.1 ";
  out += ReasonPhrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  if (!head) out += response.body;
  return out;
}

/// Wire bytes for a transport-level plain-text response (429 shed, 431
/// oversized head, 503 at capacity, ...), built without touching the
/// application handler.
std::string SimpleResponseBytes(int status, std::string_view body,
                                bool keep_alive,
                                std::string_view extra_header = {}) {
  HttpResponse response;
  response.status = status;
  response.body = std::string(body);
  if (!extra_header.empty()) {
    const size_t colon = extra_header.find(':');
    response.headers.emplace_back(
        std::string(extra_header.substr(0, colon)),
        std::string(extra_header.substr(colon + 2)));
  }
  return SerializeResponse(response, keep_alive, /*head=*/false);
}

char AsciiLower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

bool ContainsToken(std::string_view header_value, std::string_view token) {
  // Connection/Expect values are comma-separated token lists; a substring
  // scan over lowercase copies is enough for the two tokens we care about.
  while (!header_value.empty()) {
    const size_t comma = header_value.find(',');
    std::string_view item = header_value.substr(0, comma);
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    if (EqualsIgnoreCase(item, token)) return true;
    header_value = comma == std::string_view::npos
                       ? std::string_view()
                       : header_value.substr(comma + 1);
  }
  return false;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

enum class ParseOutcome { kNeedMore, kRequest, kError };

struct ParsedRequest {
  std::string method;
  std::string target;
  std::string body;
  bool keep_alive = true;
  bool expect_continue = false;
  /// Head parsed fine, body still streaming in — drives 100-continue and
  /// lets the idle sweep distinguish "mid-request" from "between
  /// requests".
  bool head_complete = false;
  /// Bytes of the input buffer this request consumed (kRequest only).
  size_t consumed = 0;
  int error_status = 0;
  std::string error_message;
};

ParseOutcome ParseError(ParsedRequest* out, int status,
                        std::string_view message) {
  out->error_status = status;
  out->error_message = std::string(message);
  return ParseOutcome::kError;
}

/// Incremental HTTP/1.x request parser over the connection's input
/// buffer. Never blocks: either a full request is buffered (kRequest,
/// with `consumed` to erase), more bytes are needed (kNeedMore), or the
/// bytes can never become a request (kError with a status to send
/// before closing).
ParseOutcome ParseOne(std::string_view in, size_t max_header_bytes,
                      size_t max_body_bytes, ParsedRequest* out) {
  // Find the end of the head; tolerate bare-LF line endings.
  size_t head_end = std::string_view::npos;
  size_t body_start = 0;
  const size_t crlf = in.find("\r\n\r\n");
  const size_t lf = in.find("\n\n");
  if (crlf != std::string_view::npos &&
      (lf == std::string_view::npos || crlf < lf)) {
    head_end = crlf;
    body_start = crlf + 4;
  } else if (lf != std::string_view::npos) {
    head_end = lf;
    body_start = lf + 2;
  }
  if (head_end == std::string_view::npos) {
    if (in.size() > max_header_bytes) {
      return ParseError(out, 431, "request head too large\n");
    }
    return ParseOutcome::kNeedMore;
  }
  if (body_start > max_header_bytes) {
    return ParseError(out, 431, "request head too large\n");
  }

  const std::string_view head = in.substr(0, head_end);
  const size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  const size_t method_end = request_line.find(' ');
  const size_t target_end =
      method_end == std::string_view::npos
          ? std::string_view::npos
          : request_line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos || method_end == 0 ||
      target_end == method_end + 1) {
    return ParseError(out, 400, "malformed request line\n");
  }
  const std::string_view method = request_line.substr(0, method_end);
  const std::string_view target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  const std::string_view version = request_line.substr(target_end + 1);
  if (version.substr(0, 5) != "HTTP/") {
    return ParseError(out, 400, "malformed request line\n");
  }
  // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; the Connection
  // header overrides either way.
  bool keep_alive = version == "HTTP/1.1";

  size_t content_length = 0;
  bool expect_continue = false;
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : head.substr(line_end + 1);
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    std::string_view line = rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return ParseError(out, 400, "malformed header line\n");
    }
    const std::string_view name = line.substr(0, colon);
    const std::string_view value = TrimOws(line.substr(colon + 1));
    if (EqualsIgnoreCase(name, "content-length")) {
      if (value.empty()) return ParseError(out, 400, "bad content-length\n");
      content_length = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') {
          return ParseError(out, 400, "bad content-length\n");
        }
        if (content_length > (max_body_bytes + 9) / 10 * 10) {
          return ParseError(out, 413, "request body too large\n");
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
      }
      if (content_length > max_body_bytes) {
        return ParseError(out, 413, "request body too large\n");
      }
    } else if (EqualsIgnoreCase(name, "connection")) {
      if (ContainsToken(value, "close")) {
        keep_alive = false;
      } else if (ContainsToken(value, "keep-alive")) {
        keep_alive = true;
      }
    } else if (EqualsIgnoreCase(name, "transfer-encoding")) {
      return ParseError(out, 501, "transfer-encoding not supported\n");
    } else if (EqualsIgnoreCase(name, "expect")) {
      if (ContainsToken(value, "100-continue")) expect_continue = true;
    }
  }

  out->head_complete = true;
  out->expect_continue = expect_continue;
  if (in.size() < body_start + content_length) return ParseOutcome::kNeedMore;

  out->method = std::string(method);
  out->target = std::string(target);
  out->body = std::string(in.substr(body_start, content_length));
  out->keep_alive = keep_alive;
  out->consumed = body_start + content_length;
  return ParseOutcome::kRequest;
}

}  // namespace

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

bool HttpServer::RequestQueue::TryPush(PendingRequest&& request) {
  {
    MutexLock lock(mutex_);
    if (shutdown_ || queue_.size() >= high_water_) return false;
    queue_.push_back(std::move(request));
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
  return true;
}

bool HttpServer::RequestQueue::Pop(PendingRequest* out) {
  MutexLock lock(mutex_);
  while (!shutdown_ && queue_.empty()) cv_.wait(mutex_);
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  return true;
}

void HttpServer::RequestQueue::Shutdown() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

#ifdef SURVEYOR_HAVE_EPOLL

// ---------------------------------------------------------------------------
// Worker: one event loop owning a set of connections
// ---------------------------------------------------------------------------

/// One event-loop thread. All connection state is owned by the loop
/// thread; the only cross-thread surface is the mutex-protected mailbox
/// (adopted fds, completed responses, the stop flag) plus an eventfd
/// that wakes epoll_wait when the mailbox has work.
class HttpServer::Worker {
 public:
  Worker(HttpServer* server, int index) : server_(server), index_(index) {}

  ~Worker() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
  }

  Status Start() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::Internal("epoll_create1(): " +
                              std::system_category().message(errno));
    }
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) {
      return Status::Internal("eventfd(): " +
                              std::system_category().message(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // id 0 is reserved for the wake eventfd
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return Status::Internal("epoll_ctl(wake): " +
                              std::system_category().message(errno));
    }
    thread_ = std::thread([this] { Loop(); });
    return Status::OK();
  }

  /// Transfers ownership of an accepted (non-blocking) socket to this
  /// worker. Thread-safe; called from the listener.
  void Adopt(int fd) {
    {
      MutexLock lock(mutex_);
      adopted_.push_back(fd);
    }
    Wake();
  }

  /// Delivers a serialized response for `conn_id`. Thread-safe; called
  /// from handler threads. Responses for connections that died while the
  /// handler ran are dropped on the floor.
  void Complete(uint64_t conn_id, std::string bytes, bool keep_alive) {
    {
      MutexLock lock(mutex_);
      completions_.push_back({conn_id, std::move(bytes), keep_alive});
    }
    Wake();
  }

  void RequestStop() {
    {
      MutexLock lock(mutex_);
      stop_requested_ = true;
    }
    Wake();
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
    bool keep_alive = true;
  };

  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    /// Raw bytes read, not yet consumed by the parser.
    std::string in;
    /// Serialized response bytes not yet written; out_pos is the write
    /// cursor so flushed prefixes are not re-sent.
    std::string out;
    size_t out_pos = 0;
    /// A request from this connection sits in the queue or a handler;
    /// at most one per connection — pipelined successors wait in `in`.
    bool busy = false;
    bool close_after_write = false;
    bool peer_closed = false;
    bool sent_continue = false;
    /// Back-pressure: reads are parked when `in` is full while busy.
    bool reads_paused = false;
    uint32_t armed_events = EPOLLIN;
    Clock::time_point last_activity;
  };

  void Wake() {
    const uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }

  void Loop() {
    epoll_event events[64];
    std::vector<uint64_t> idle_ids;
    Clock::time_point last_sweep = Clock::now();
    for (;;) {
      const int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/50);
      if (n < 0 && errno != EINTR) break;

      // Drain the mailbox first so adopted fds see their first bytes and
      // completions land before the fd events that follow them.
      std::vector<int> adopted;
      std::vector<Completion> completions;
      {
        MutexLock lock(mutex_);
        adopted.swap(adopted_);
        completions.swap(completions_);
        if (stop_requested_ && !stopping_) {
          stopping_ = true;
          flush_deadline_ = Clock::now() + std::chrono::seconds(1);
        }
      }
      for (const int fd : adopted) {
        if (stopping_) {
          ::close(fd);
          server_->ReleaseConnection();
          continue;
        }
        AddConnection(fd);
      }
      for (Completion& completion : completions) {
        ApplyCompletion(std::move(completion));
      }

      for (int i = 0; i < n; ++i) {
        const uint64_t id = events[i].data.u64;
        if (id == 0) {
          uint64_t drained = 0;
          while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        const auto it = conns_.find(id);
        if (it == conns_.end()) continue;  // closed earlier this round
        Connection* conn = it->second.get();
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 && !conn->busy &&
            conn->out_pos >= conn->out.size()) {
          Close(conn);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) {
          if (!FlushAndMaybeClose(conn)) continue;
        }
        if ((events[i].events & EPOLLIN) != 0) {
          OnReadable(conn);
        }
      }

      // Idle sweep: cheap enough to run twice a second over every
      // connection this worker owns.
      const Clock::time_point now = Clock::now();
      const double idle_timeout = server_->options_.idle_timeout_seconds;
      if (idle_timeout > 0 &&
          now - last_sweep > std::chrono::milliseconds(500)) {
        last_sweep = now;
        idle_ids.clear();
        for (const auto& [id, conn] : conns_) {
          if (conn->busy) continue;
          const double idle =
              std::chrono::duration<double>(now - conn->last_activity)
                  .count();
          if (idle > idle_timeout) idle_ids.push_back(id);
        }
        for (const uint64_t id : idle_ids) {
          const auto it = conns_.find(id);
          if (it == conns_.end()) continue;
          Connection* conn = it->second.get();
          server_->idle_timeouts_total_->Increment();
          if (conn->in.empty() && conn->out_pos >= conn->out.size()) {
            // Quietly drop a keep-alive connection parked between
            // requests.
            Close(conn);
          } else {
            // A partial request held open this long is a slow loris;
            // name the timeout before hanging up.
            SendInline(conn, 408, "request timeout\n",
                       /*close_after=*/true);
          }
        }
      }

      if (stopping_) {
        bool pending_writes = false;
        for (const auto& [id, conn] : conns_) {
          if (conn->out_pos < conn->out.size()) pending_writes = true;
        }
        {
          MutexLock lock(mutex_);
          if (!completions_.empty()) continue;  // more responses to land
        }
        if (!pending_writes || Clock::now() > flush_deadline_) {
          while (!conns_.empty()) Close(conns_.begin()->second.get());
          return;
        }
      }
    }
  }

  void AddConnection(int fd) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_id_++;
    conn->last_activity = Clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      server_->ReleaseConnection();
      return;
    }
    conns_.emplace(conn->id, std::move(conn));
  }

  void Close(Connection* conn) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conns_.erase(conn->id);
    server_->ReleaseConnection();
  }

  /// Re-arms the connection's epoll interest to match its state: reads
  /// unless paused or half-closed, writes only while bytes are pending
  /// (EPOLLOUT would busy-loop a level-triggered loop otherwise).
  void UpdateInterest(Connection* conn) {
    uint32_t want = 0;
    if (!conn->reads_paused && !conn->peer_closed &&
        !conn->close_after_write) {
      want |= EPOLLIN;
    }
    if (conn->out_pos < conn->out.size()) want |= EPOLLOUT;
    if (want == conn->armed_events) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->armed_events = want;
    }
  }

  /// Writes as much pending output as the socket accepts. Returns false
  /// when the connection was closed (write error, or close-after-write
  /// completing); the pointer is dead in that case.
  bool FlushAndMaybeClose(Connection* conn) {
    while (conn->out_pos < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_pos,
                 conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        conn->last_activity = Clock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        UpdateInterest(conn);
        return true;
      }
      Close(conn);
      return false;
    }
    conn->out.clear();
    conn->out_pos = 0;
    if (conn->close_after_write) {
      Close(conn);
      return false;
    }
    UpdateInterest(conn);
    return true;
  }

  /// Queues a transport-level response (429/431/408/...) and flushes.
  /// Returns false when the connection is gone.
  bool SendInline(Connection* conn, int status, std::string_view body,
                  bool close_after, std::string_view extra_header = {}) {
    const bool keep_alive = !close_after;
    conn->out += SimpleResponseBytes(status, body, keep_alive, extra_header);
    if (close_after) conn->close_after_write = true;
    return FlushAndMaybeClose(conn);
  }

  void OnReadable(Connection* conn) {
    char buffer[4096];
    for (;;) {
      if (conn->in.size() >= MaxBufferedInput()) {
        // A pipelining client ran ahead of the handler; stop reading
        // until the in-flight request completes.
        conn->reads_paused = true;
        UpdateInterest(conn);
        break;
      }
      const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        conn->in.append(buffer, static_cast<size_t>(n));
        conn->last_activity = Clock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error: no more requests will arrive. Any response
      // still owed (busy or buffered) may still be deliverable on the
      // half-open socket.
      conn->peer_closed = true;
      UpdateInterest(conn);
      break;
    }
    TryDispatch(conn);
  }

  /// Parses and dispatches as many buffered requests as admission
  /// control allows: at most one in flight per connection; shed requests
  /// (429) do not occupy the connection, so parsing continues behind
  /// them.
  void TryDispatch(Connection* conn) {
    while (!conn->busy && !conn->close_after_write) {
      if (server_->draining_.load(std::memory_order_relaxed)) {
        if (!conn->in.empty()) {
          SendInline(conn, 503, "shutting down\n", /*close_after=*/true);
        }
        return;
      }
      ParsedRequest request;
      const ParseOutcome outcome =
          ParseOne(conn->in, server_->options_.max_header_bytes,
                   server_->options_.max_body_bytes, &request);
      if (outcome == ParseOutcome::kNeedMore) {
        if (request.head_complete && request.expect_continue &&
            !conn->sent_continue) {
          conn->sent_continue = true;
          conn->out += "HTTP/1.1 100 Continue\r\n\r\n";
          FlushAndMaybeClose(conn);
          return;
        }
        if (conn->peer_closed && conn->out_pos >= conn->out.size()) {
          // Half a request and the peer hung up: nothing left to do.
          Close(conn);
        }
        return;
      }
      if (outcome == ParseOutcome::kError) {
        server_->parse_errors_total_->Increment();
        SendInline(conn, request.error_status, request.error_message,
                   /*close_after=*/true);
        return;
      }
      conn->in.erase(0, request.consumed);
      conn->sent_continue = false;
      server_->requests_total_->Increment();
      PendingRequest pending;
      pending.worker_index = index_;
      pending.connection_id = conn->id;
      pending.method = std::move(request.method);
      pending.target = std::move(request.target);
      pending.body = std::move(request.body);
      pending.keep_alive = request.keep_alive;
      server_->inflight_.fetch_add(1, std::memory_order_acq_rel);
      if (!server_->queue_->TryPush(std::move(pending))) {
        server_->inflight_.fetch_sub(1, std::memory_order_acq_rel);
        server_->shed_total_->Increment();
        if (!SendInline(conn, 429, "overloaded, backing off helps\n",
                        /*close_after=*/false, "Retry-After: 1")) {
          return;
        }
        continue;  // the next pipelined request may still be admitted
      }
      conn->busy = true;
    }
  }

  void ApplyCompletion(Completion completion) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) return;
    Connection* conn = it->second.get();
    conn->busy = false;
    conn->last_activity = Clock::now();
    if (conn->out.empty()) {
      conn->out = std::move(completion.bytes);
    } else {
      conn->out += completion.bytes;
    }
    if (!completion.keep_alive || conn->peer_closed) {
      conn->close_after_write = true;
    }
    if (conn->reads_paused) {
      conn->reads_paused = false;
    }
    if (!FlushAndMaybeClose(conn)) return;
    TryDispatch(conn);  // a pipelined successor may already be buffered
  }

  size_t MaxBufferedInput() const {
    return server_->options_.max_header_bytes +
           server_->options_.max_body_bytes + 1;
  }

  HttpServer* const server_;
  const int index_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  Mutex mutex_;
  std::vector<int> adopted_ SURVEYOR_GUARDED_BY(mutex_);
  std::vector<Completion> completions_ SURVEYOR_GUARDED_BY(mutex_);
  bool stop_requested_ SURVEYOR_GUARDED_BY(mutex_) = false;

  /// Loop-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_id_ = 1;  // 0 is the wake eventfd's id
  bool stopping_ = false;
  Clock::time_point flush_deadline_;
};

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

void HttpServer::ReleaseConnection() {
  const size_t open =
      connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  connections_gauge_->Set(static_cast<double>(open));
}

Status HttpServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("http server already started");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("http port out of range");
  }
  options_.num_workers = std::max(1, options_.num_workers);
  options_.handler_threads = std::max(1, options_.handler_threads);
  options_.max_connections = std::max<size_t>(1, options_.max_connections);
  options_.queue_high_water = std::max<size_t>(1, options_.queue_high_water);

  if (metrics_ == nullptr) {
    if (options_.metrics != nullptr) {
      metrics_ = options_.metrics;
    } else {
      owned_metrics_ = std::make_unique<MetricRegistry>();
      metrics_ = owned_metrics_.get();
    }
    accepted_total_ = metrics_->GetCounter("surveyor_http_accepted_total");
    rejected_connections_total_ =
        metrics_->GetCounter("surveyor_http_rejected_connections_total");
    requests_total_ = metrics_->GetCounter("surveyor_http_requests_total");
    shed_total_ = metrics_->GetCounter("surveyor_http_shed_total");
    parse_errors_total_ =
        metrics_->GetCounter("surveyor_http_parse_errors_total");
    idle_timeouts_total_ =
        metrics_->GetCounter("surveyor_http_idle_timeouts_total");
    connections_gauge_ = metrics_->GetGauge("surveyor_http_connections");
    queue_depth_gauge_ = metrics_->GetGauge("surveyor_http_queue_depth");
    metrics_->SetHelp("surveyor_http_accepted_total",
                      "Connections accepted by the listener");
    metrics_->SetHelp("surveyor_http_rejected_connections_total",
                      "Connections refused at the --max-connections cap");
    metrics_->SetHelp("surveyor_http_requests_total",
                      "HTTP requests parsed off connections");
    metrics_->SetHelp("surveyor_http_shed_total",
                      "Requests shed with 429 past the queue high-water mark");
    metrics_->SetHelp("surveyor_http_parse_errors_total",
                      "Connections dropped for malformed/oversized requests");
    metrics_->SetHelp("surveyor_http_idle_timeouts_total",
                      "Connections closed by the idle-timeout sweep");
    metrics_->SetHelp("surveyor_http_connections",
                      "Open connections across all workers");
    metrics_->SetHelp("surveyor_http_queue_depth",
                      "Requests waiting in the bounded handler queue");
  }

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " +
                            std::system_category().message(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::system_category().message(errno);
    ::close(fd);
    return Status::Internal("bind(" + options_.bind_address + ":" +
                            std::to_string(options_.port) + "): " + error);
  }
  if (::listen(fd, /*backlog=*/128) != 0) {
    const std::string error = std::system_category().message(errno);
    ::close(fd);
    return Status::Internal("listen(): " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  listener_wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (listener_wake_fd_ < 0) {
    ::close(fd);
    return Status::Internal("eventfd(): " +
                            std::system_category().message(errno));
  }

  listen_fd_ = fd;
  draining_.store(false);
  inflight_.store(0);
  connections_.store(0);
  next_worker_.store(0);
  connections_gauge_->Set(0);
  queue_depth_gauge_->Set(0);

  queue_ = std::make_unique<RequestQueue>(options_.queue_high_water,
                                          queue_depth_gauge_);
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
    const Status status = workers_.back()->Start();
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  handler_pool_.reserve(static_cast<size_t>(options_.handler_threads));
  for (int i = 0; i < options_.handler_threads; ++i) {
    handler_pool_.emplace_back([this] { HandlerLoop(); });
  }
  listener_thread_ = std::thread([this] { ListenerLoop(); });
  return Status::OK();
}

void HttpServer::ListenerLoop() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev = epoll_event{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_wake_fd_;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listener_wake_fd_, &ev);

  // Serialized once; every over-capacity connection gets the same bytes.
  const std::string at_capacity = SimpleResponseBytes(
      503, "server at connection capacity\n", /*keep_alive=*/false,
      "Retry-After: 1");

  epoll_event events[8];
  while (!draining_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd, events, 8, -1);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == listener_wake_fd_) {
        uint64_t drained = 0;
        while (::read(listener_wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Edge-triggered accept: drain the backlog completely, the
      // notification will not repeat for connections already queued.
      for (;;) {
        const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (client < 0) {
          if (errno == EINTR || errno == ECONNABORTED) continue;
          break;  // EAGAIN, or a transient error the next edge retries
        }
        const size_t open =
            connections_.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (open > options_.max_connections) {
          // Over the cap: answer 503 inline and hang up without ever
          // involving a worker.
          rejected_connections_total_->Increment();
          ssize_t ignored = ::send(client, at_capacity.data(),
                                   at_capacity.size(), MSG_NOSIGNAL);
          (void)ignored;
          ::close(client);
          ReleaseConnection();
          continue;
        }
        connections_gauge_->Set(static_cast<double>(open));
        accepted_total_->Increment();
        const size_t index =
            next_worker_.fetch_add(1, std::memory_order_relaxed) %
            workers_.size();
        workers_[index]->Adopt(client);
      }
    }
  }
  ::close(epoll_fd);
}

void HttpServer::HandlerLoop() {
  PendingRequest request;
  while (queue_->Pop(&request)) {
    const HttpResponse response =
        handler_(request.method, request.target, request.body);
    const bool keep_alive =
        request.keep_alive && !draining_.load(std::memory_order_relaxed);
    std::string bytes =
        SerializeResponse(response, keep_alive, request.method == "HEAD");
    workers_[static_cast<size_t>(request.worker_index)]->Complete(
        request.connection_id, std::move(bytes), keep_alive);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  // 1. Stop admitting: new connections are refused (listener exits), new
  //    parsed requests answer 503.
  draining_.store(true, std::memory_order_release);
  {
    const uint64_t one = 1;
    ssize_t ignored = ::write(listener_wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (listener_thread_.joinable()) listener_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(listener_wake_fd_);
  listener_wake_fd_ = -1;

  // 2. Drain: wait (bounded) for queued and executing requests to hand
  //    their responses back to the workers.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::max(0.0, options_.drain_seconds)));
  while (inflight_.load(std::memory_order_acquire) > 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 3. Tear down the handler pool (Pop drains whatever is still queued
  //    first), then the workers, which flush pending responses before
  //    closing their connections.
  if (queue_ != nullptr) queue_->Shutdown();
  for (std::thread& thread : handler_pool_) {
    if (thread.joinable()) thread.join();
  }
  handler_pool_.clear();
  for (const std::unique_ptr<Worker>& worker : workers_) {
    worker->RequestStop();
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    worker->Join();
  }
  workers_.clear();
  queue_.reset();
  connections_.store(0);
  if (connections_gauge_ != nullptr) connections_gauge_->Set(0);
  if (queue_depth_gauge_ != nullptr) queue_depth_gauge_->Set(0);
  draining_.store(false);  // the server can Start() again
}

#else  // !SURVEYOR_HAVE_EPOLL

class HttpServer::Worker {};

Status HttpServer::Start() {
  return Status::Unimplemented("http server needs Linux epoll");
}

void HttpServer::Stop() {}

void HttpServer::ListenerLoop() {}

void HttpServer::HandlerLoop() {}

void HttpServer::ReleaseConnection() {}

#endif  // SURVEYOR_HAVE_EPOLL

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  SURVEYOR_CHECK(handler_ != nullptr);
}

HttpServer::~HttpServer() { Stop(); }

int64_t HttpServer::shed_count() const {
  return shed_total_ == nullptr ? 0 : shed_total_->Value();
}

}  // namespace obs
}  // namespace surveyor
