#include "obs/log_ring.h"

#include <algorithm>

#include "obs/metrics.h"

namespace surveyor {
namespace obs {

namespace {

void GlobalTee(LogSeverity severity, std::string_view line) {
  LogRing::Global().Append(severity, line);
}

size_t SeverityIndex(LogSeverity severity) {
  const size_t index = static_cast<size_t>(severity);
  return index < 4 ? index : 3;
}

}  // namespace

std::string_view LogSeverityLabel(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarning:
      return "warning";
    case LogSeverity::kError:
      return "error";
    case LogSeverity::kFatal:
      return "fatal";
  }
  return "?";
}

LogRing& LogRing::Global() {
  static LogRing* ring = new LogRing();
  return *ring;
}

LogRing::LogRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  // No sharing yet, but constructor bodies are analyzed like any other
  // function, so take the lock for the guarded reserve.
  MutexLock lock(mutex_);
  lines_.reserve(std::min<size_t>(capacity_, kDefaultCapacity));
}

void LogRing::Append(LogSeverity severity, std::string_view line) {
  counts_[SeverityIndex(severity)].fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  if (lines_.size() < capacity_) {
    Line entry;
    entry.sequence = next_sequence_++;
    entry.severity = severity;
    entry.text.assign(line);
    lines_.push_back(std::move(entry));
    return;
  }
  // Full: overwrite the oldest slot in place. assign() reuses the evicted
  // line's string capacity, so the steady state neither allocates nor
  // shifts earlier entries (the front-erase this replaces was
  // O(capacity) per append).
  Line& slot = lines_[next_slot_];
  slot.sequence = next_sequence_++;
  slot.severity = severity;
  slot.text.assign(line);
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<LogRing::Line> LogRing::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<Line> lines;
  lines.reserve(lines_.size());
  // Oldest first: once the ring has wrapped, next_slot_ is the oldest.
  const size_t n = lines_.size();
  const size_t oldest = n < capacity_ ? 0 : next_slot_;
  for (size_t i = 0; i < n; ++i) {
    lines.push_back(lines_[(oldest + i) % n]);
  }
  return lines;
}

int64_t LogRing::MessageCount(LogSeverity severity) const {
  return counts_[SeverityIndex(severity)].load(std::memory_order_relaxed);
}

int64_t LogRing::TotalMessages() const {
  int64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

void LogRing::SetCapacity(size_t capacity) {
  if (capacity == 0) capacity = 1;
  MutexLock lock(mutex_);
  // Rebuild in sequence order, keeping the newest lines, and reset the
  // ring to the unwrapped state. Rare operation; O(size) is fine here.
  std::vector<Line> ordered;
  ordered.reserve(std::min(lines_.size(), capacity));
  const size_t n = lines_.size();
  const size_t oldest = n < capacity_ ? 0 : next_slot_;
  const size_t skip = n > capacity ? n - capacity : 0;
  for (size_t i = skip; i < n; ++i) {
    ordered.push_back(std::move(lines_[(oldest + i) % n]));
  }
  lines_ = std::move(ordered);
  next_slot_ = 0;
  capacity_ = capacity;
}

void LogRing::Clear() {
  MutexLock lock(mutex_);
  lines_.clear();
  next_slot_ = 0;
  next_sequence_ = 0;
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
}

void LogRing::AppendPrometheusText(std::string* out) const {
  const std::string name = "surveyor_log_messages_total";
  *out += "# HELP " + name + " Log messages emitted, by severity.\n";
  *out += "# TYPE " + name + " counter\n";
  for (const LogSeverity severity :
       {LogSeverity::kInfo, LogSeverity::kWarning, LogSeverity::kError,
        LogSeverity::kFatal}) {
    *out += name + "{severity=\"" +
            EscapeLabelValue(LogSeverityLabel(severity)) + "\"} " +
            std::to_string(MessageCount(severity)) + "\n";
  }
}

void LogRing::InstallGlobalTee() {
  Global();  // Force construction before the tee can fire.
  SetLogTee(&GlobalTee);
}

void LogRing::UninstallGlobalTee() { SetLogTee(nullptr); }

}  // namespace obs
}  // namespace surveyor
