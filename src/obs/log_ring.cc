#include "obs/log_ring.h"

#include <algorithm>

#include "obs/metrics.h"

namespace surveyor {
namespace obs {

namespace {

void GlobalTee(LogSeverity severity, std::string_view line) {
  LogRing::Global().Append(severity, line);
}

size_t SeverityIndex(LogSeverity severity) {
  const size_t index = static_cast<size_t>(severity);
  return index < 4 ? index : 3;
}

}  // namespace

std::string_view LogSeverityLabel(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarning:
      return "warning";
    case LogSeverity::kError:
      return "error";
    case LogSeverity::kFatal:
      return "fatal";
  }
  return "?";
}

LogRing& LogRing::Global() {
  static LogRing* ring = new LogRing();
  return *ring;
}

LogRing::LogRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  // No sharing yet, but constructor bodies are analyzed like any other
  // function, so take the lock for the guarded reserve.
  MutexLock lock(mutex_);
  lines_.reserve(std::min<size_t>(capacity_, kDefaultCapacity));
}

void LogRing::Append(LogSeverity severity, std::string_view line) {
  counts_[SeverityIndex(severity)].fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  Line entry;
  entry.sequence = next_sequence_++;
  entry.severity = severity;
  entry.text = std::string(line);
  // lines_ stays in sequence order; evicting the oldest is a front erase.
  // O(capacity) worst case, which is fine — logging is never a hot loop.
  if (lines_.size() == capacity_) lines_.erase(lines_.begin());
  lines_.push_back(std::move(entry));
}

std::vector<LogRing::Line> LogRing::Snapshot() const {
  MutexLock lock(mutex_);
  return lines_;
}

int64_t LogRing::MessageCount(LogSeverity severity) const {
  return counts_[SeverityIndex(severity)].load(std::memory_order_relaxed);
}

int64_t LogRing::TotalMessages() const {
  int64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

void LogRing::SetCapacity(size_t capacity) {
  if (capacity == 0) capacity = 1;
  MutexLock lock(mutex_);
  capacity_ = capacity;
  if (lines_.size() > capacity_) {
    lines_.erase(lines_.begin(),
                 lines_.begin() +
                     static_cast<ptrdiff_t>(lines_.size() - capacity_));
  }
}

void LogRing::Clear() {
  MutexLock lock(mutex_);
  lines_.clear();
  next_sequence_ = 0;
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
}

void LogRing::AppendPrometheusText(std::string* out) const {
  const std::string name = "surveyor_log_messages_total";
  *out += "# HELP " + name + " Log messages emitted, by severity.\n";
  *out += "# TYPE " + name + " counter\n";
  for (const LogSeverity severity :
       {LogSeverity::kInfo, LogSeverity::kWarning, LogSeverity::kError,
        LogSeverity::kFatal}) {
    *out += name + "{severity=\"" +
            EscapeLabelValue(LogSeverityLabel(severity)) + "\"} " +
            std::to_string(MessageCount(severity)) + "\n";
  }
}

void LogRing::InstallGlobalTee() {
  Global();  // Force construction before the tee can fire.
  SetLogTee(&GlobalTee);
}

void LogRing::UninstallGlobalTee() { SetLogTee(nullptr); }

}  // namespace obs
}  // namespace surveyor
