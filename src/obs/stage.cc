#include "obs/stage.h"

namespace surveyor {
namespace obs {

namespace {

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::string_view PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kStarting:
      return "starting";
    case PipelineStage::kExtracting:
      return "extracting";
    case PipelineStage::kFitting:
      return "fitting";
    case PipelineStage::kServing:
      return "serving";
    case PipelineStage::kDone:
      return "done";
  }
  return "?";
}

StageTracker::StageTracker()
    : start_(Clock::now()), stage_start_(start_) {
  // Constructor bodies are analyzed like any other function; lock for the
  // guarded members even though nothing can share the tracker yet.
  MutexLock lock(mutex_);
  accumulated_.emplace_back(std::string(PipelineStageName(stage_)), 0.0);
}

PipelineStage StageTracker::stage() const {
  MutexLock lock(mutex_);
  return stage_;
}

void StageTracker::SetStage(PipelineStage stage) {
  const Clock::time_point now = Clock::now();
  MutexLock lock(mutex_);
  // Close the open interval of the outgoing stage.
  const std::string outgoing(PipelineStageName(stage_));
  for (auto& [name, seconds] : accumulated_) {
    if (name == outgoing) {
      seconds += SecondsBetween(stage_start_, now);
      break;
    }
  }
  stage_ = stage;
  stage_atomic_.store(static_cast<int>(stage), std::memory_order_relaxed);
  stage_start_ = now;
  const std::string incoming(PipelineStageName(stage));
  for (const auto& [name, seconds] : accumulated_) {
    if (name == incoming) return;
  }
  accumulated_.emplace_back(incoming, 0.0);
}

void StageTracker::SetDegraded(bool degraded) {
  MutexLock lock(mutex_);
  degraded_ = degraded;
}

bool StageTracker::degraded() const {
  MutexLock lock(mutex_);
  return degraded_;
}

bool StageTracker::ready() const {
  const PipelineStage current = stage();
  return current == PipelineStage::kServing || current == PipelineStage::kDone;
}

double StageTracker::SecondsInStage() const {
  MutexLock lock(mutex_);
  return SecondsBetween(stage_start_, Clock::now());
}

double StageTracker::UptimeSeconds() const {
  MutexLock lock(mutex_);
  return SecondsBetween(start_, Clock::now());
}

std::vector<std::pair<std::string, double>> StageTracker::StageSeconds()
    const {
  const Clock::time_point now = Clock::now();
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, double>> seconds = accumulated_;
  const std::string current(PipelineStageName(stage_));
  for (auto& [name, total] : seconds) {
    if (name == current) {
      total += SecondsBetween(stage_start_, now);
      break;
    }
  }
  return seconds;
}

}  // namespace obs
}  // namespace surveyor
