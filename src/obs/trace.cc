#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/request_trace.h"

namespace surveyor {
namespace obs {
namespace {

/// Innermost live span on this thread; 0 at top level.
thread_local uint64_t tls_current_span = 0;

double SecondsSince(std::chrono::steady_clock::time_point from,
                    std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetCapacity(size_t capacity) {
  MutexLock lock(mutex_);
  capacity_ = capacity;
  if (spans_.size() > capacity_) spans_.resize(capacity_);
}

void Tracer::Clear() {
  MutexLock lock(mutex_);
  spans_.clear();
  active_.clear();
  next_id_.store(1, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
}

std::chrono::steady_clock::time_point Tracer::epoch() const {
  MutexLock lock(mutex_);
  return epoch_;
}

void Tracer::Record(TraceSpan span) {
  MutexLock lock(mutex_);
  if (spans_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(span));
}

void Tracer::RegisterActive(ActiveSpan span) {
  MutexLock lock(mutex_);
  active_.push_back(std::move(span));
}

void Tracer::UnregisterActive(uint64_t id) {
  MutexLock lock(mutex_);
  for (size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].id != id) continue;
    active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

std::vector<ActiveSpan> Tracer::ActiveSpans() const {
  std::vector<ActiveSpan> active;
  {
    MutexLock lock(mutex_);
    active = active_;
  }
  std::sort(active.begin(), active.end(),
            [](const ActiveSpan& a, const ActiveSpan& b) {
              if (a.thread_index != b.thread_index) {
                return a.thread_index < b.thread_index;
              }
              return a.start_seconds < b.start_seconds;
            });
  return active;
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::vector<TraceSpan> spans;
  {
    MutexLock lock(mutex_);
    spans = spans_;
  }
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.start_seconds != b.start_seconds) {
                return a.start_seconds < b.start_seconds;
              }
              return a.id < b.id;
            });
  return spans;
}

uint64_t CurrentSpanId() { return tls_current_span; }

void ScopedSpan::Start(std::string_view name, uint64_t parent_id) {
  Tracer& tracer = Tracer::Global();
  internal::RequestContext* request = internal::CurrentRequestContext();
  const bool request_recording = request != nullptr && request->recording;
  if (!request_recording && !tracer.enabled()) return;
  recording_ = true;
  restore_parent_ = true;
  id_ = tracer.NextId();
  saved_parent_ = tls_current_span;
  tls_current_span = id_;
  name_ = std::string(name);
  // Stash the parent in the saved slot only for linkage; the span record
  // carries the explicit parent.
  parent_id_for_record_ = parent_id;
  start_ = std::chrono::steady_clock::now();
  if (request_recording) {
    // Request spans stay request-local: recorded into the scope's buffer
    // on End(), with no ActiveSpan registration and no global-tracer
    // contention on the serving path.
    request_ = request;
    return;
  }
  ActiveSpan active;
  active.id = id_;
  active.parent_id = parent_id;
  active.name = name_;
  active.thread_index = CurrentThreadIndex();
  active.start_seconds = SecondsSince(tracer.epoch(), start_);
  tracer.RegisterActive(std::move(active));
}

ScopedSpan::ScopedSpan(std::string_view name) {
  Start(name, tls_current_span);
}

ScopedSpan::ScopedSpan(std::string_view name, uint64_t parent_id) {
  Start(name, parent_id);
}

void ScopedSpan::End() {
  if (restore_parent_) {
    tls_current_span = saved_parent_;
    restore_parent_ = false;
  }
  if (!recording_) return;
  recording_ = false;
  const auto now = std::chrono::steady_clock::now();
  final_seconds_ = SecondsSince(start_, now);
  if (request_ != nullptr) {
    internal::RequestContext* request = request_;
    request_ = nullptr;
    // Record only while the owning RequestScope is still installed on
    // this thread; a span that outlives its request has nowhere to go.
    if (internal::CurrentRequestContext() != request) return;
    TraceSpan span;
    span.id = id_;
    span.parent_id = parent_id_for_record_;
    span.name = std::move(name_);
    span.thread_index = CurrentThreadIndex();
    span.start_seconds = SecondsSince(request->start, start_);
    span.duration_seconds = final_seconds_;
    if (request->trace.spans.size() < request->max_spans) {
      request->trace.spans.push_back(std::move(span));
    } else {
      ++request->trace.dropped_spans;
    }
    return;
  }
  Tracer& tracer = Tracer::Global();
  tracer.UnregisterActive(id_);
  TraceSpan span;
  span.id = id_;
  span.parent_id = parent_id_for_record_;
  span.name = std::move(name_);
  span.thread_index = CurrentThreadIndex();
  span.start_seconds = SecondsSince(tracer.epoch(), start_);
  span.duration_seconds = final_seconds_;
  tracer.Record(std::move(span));
}

ScopedSpan::~ScopedSpan() { End(); }

double ScopedSpan::ElapsedSeconds() const {
  if (recording_) {
    return SecondsSince(start_, std::chrono::steady_clock::now());
  }
  return final_seconds_;
}

TraceSession::TraceSession(Tracer& tracer)
    : tracer_(&tracer), previous_enabled_(tracer.enabled()) {
  tracer_->Clear();
  tracer_->SetEnabled(true);
}

TraceSession::~TraceSession() { tracer_->SetEnabled(previous_enabled_); }

}  // namespace obs
}  // namespace surveyor
