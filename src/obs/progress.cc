#include "obs/progress.h"

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace surveyor {
namespace obs {

ProgressReporter::ProgressReporter(double interval_seconds,
                                   std::function<void()> report) {
  SURVEYOR_CHECK_GT(interval_seconds, 0.0);
  thread_ = std::thread([this, interval_seconds,
                         report = std::move(report)] {
    Loop(interval_seconds, report);
  });
}

void ProgressReporter::Loop(double interval_seconds,
                            const std::function<void()>& report) {
  const auto interval = std::chrono::duration<double>(interval_seconds);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      return;
    }
    // Report outside the lock so a slow sink cannot block the destructor.
    lock.unlock();
    report();
    lock.lock();
  }
}

ProgressReporter::~ProgressReporter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

}  // namespace obs
}  // namespace surveyor
