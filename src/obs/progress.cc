#include "obs/progress.h"

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace surveyor {
namespace obs {

ProgressReporter::ProgressReporter(double interval_seconds,
                                   std::function<void()> report) {
  SURVEYOR_CHECK_GT(interval_seconds, 0.0);
  thread_ = std::thread([this, interval_seconds,
                         report = std::move(report)] {
    Loop(interval_seconds, report);
  });
}

void ProgressReporter::Loop(double interval_seconds,
                            const std::function<void()>& report) {
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(interval_seconds));
  // Explicit Lock/Unlock instead of a scoped lock: the loop drops the
  // mutex around report() so a slow sink cannot block the destructor, and
  // the analysis tracks the hand-over-hand state across the iterations.
  mutex_.Lock();
  for (;;) {
    const Clock::time_point deadline = Clock::now() + interval;
    // Deadline loop instead of the predicate overload: lambda bodies are
    // analyzed as separate functions that do not hold mutex_.
    while (!stopping_ && Clock::now() < deadline) {
      stop_cv_.wait_until(mutex_, deadline);
    }
    if (stopping_) break;
    mutex_.Unlock();
    report();
    mutex_.Lock();
  }
  mutex_.Unlock();
}

ProgressReporter::~ProgressReporter() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

}  // namespace obs
}  // namespace surveyor
