#ifndef SURVEYOR_OBS_REQUEST_TRACE_H_
#define SURVEYOR_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

class AccessLog;

/// Per-request counters bumped by the serving layer while a RequestScope
/// is live on the thread (CurrentRequestStats()). They end up on the
/// access-log entry and the kept trace, so a slow request explains itself:
/// cache miss? snapshot rebuild? retry after an injected fault?
struct RequestStats {
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t retries = 0;
};

/// One completed, retained request trace: the request envelope plus the
/// span tree collected underneath it. Span start times are relative to the
/// request start, so a trace is self-contained.
struct RequestTrace {
  uint64_t trace_id = 0;
  /// Head-sampled at admission (SampleDecision).
  bool sampled = false;
  /// Exceeded the slow-query threshold (tail capture).
  bool slow = false;
  std::string method;
  /// Request target (path + query), truncated to a bounded length.
  std::string target;
  int status = 0;
  size_t response_bytes = 0;
  /// Wall-clock request start (unix seconds), for display only.
  double start_unix_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Spans not recorded because the per-trace cap was hit.
  int64_t dropped_spans = 0;
  RequestStats stats;
  std::vector<TraceSpan> spans;
};

struct RequestTracerOptions {
  /// Head-sampling rate in [0, 1]: the fraction of requests whose trace is
  /// retained regardless of latency. 0 disables head sampling.
  double sample_rate = 0.01;
  /// Requests slower than this are retained even when not head-sampled
  /// (tail capture). <= 0 disables tail capture.
  double slow_threshold_seconds = 0.25;
  /// Retained traces kept in the ring (oldest overwritten).
  size_t ring_capacity = 64;
  /// Spans recorded per trace before further spans are counted as dropped.
  size_t max_spans_per_trace = 128;
};

class RequestTracer;

namespace internal {

/// Thread-local state of the request currently being served. Bridge
/// between RequestScope (owner) and ScopedSpan (trace.cc routes spans of
/// an armed request here instead of the global Tracer). Internal: use
/// RequestScope / CurrentRequestStats() / CurrentSampledTraceId().
struct RequestContext {
  RequestTracer* tracer = nullptr;
  AccessLog* access_log = nullptr;
  /// Collect spans into `trace.spans` (tracer armed at admission).
  bool recording = false;
  size_t max_spans = 0;
  double slow_threshold_seconds = 0.0;
  std::chrono::steady_clock::time_point start;
  RequestTrace trace;
};

/// The active request context of this thread; nullptr outside a request.
RequestContext* CurrentRequestContext();

}  // namespace internal

/// Assigns trace ids, makes the keep/drop decision and owns the bounded
/// ring of retained request traces served by /tracez. Thread-safe; one
/// instance per admin server.
class RequestTracer {
 public:
  explicit RequestTracer(RequestTracerOptions options = {});
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  const RequestTracerOptions& options() const { return options_; }

  /// Whether request spans are collected at all: with head sampling off
  /// and tail capture off there is nobody to keep a trace, so scopes skip
  /// span collection entirely and the per-request cost is a few atomics.
  bool armed() const {
    return options_.sample_rate > 0.0 ||
           options_.slow_threshold_seconds > 0.0;
  }

  /// Deterministic head-sampling decision: hashes the trace id (splitmix64
  /// finalizer) into [0, 1) and compares against `rate`. Rate <= 0 never
  /// samples, rate >= 1 always does; sequential ids decorrelate.
  static bool SampleDecision(uint64_t trace_id, double rate);

  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Retains one finished trace in the ring (called by ~RequestScope for
  /// sampled or slow requests), overwriting the oldest when full.
  void Keep(RequestTrace trace) SURVEYOR_EXCLUDES(mutex_);

  /// The retained traces, newest first.
  std::vector<RequestTrace> Snapshot() const SURVEYOR_EXCLUDES(mutex_);

  /// Drops all retained traces (counters keep running).
  void Clear() SURVEYOR_EXCLUDES(mutex_);

  // Lifetime counters, maintained by RequestScope.
  void CountRequest(bool sampled, bool slow);
  int64_t requests_started() const {
    return started_.load(std::memory_order_relaxed);
  }
  int64_t requests_sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }
  int64_t requests_slow() const {
    return slow_.load(std::memory_order_relaxed);
  }
  int64_t traces_kept() const {
    return kept_.load(std::memory_order_relaxed);
  }
  /// Retained traces overwritten by newer ones.
  int64_t traces_evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Appends Prometheus exposition for the tracer counters
  /// (surveyor_trace_requests_total etc.).
  void AppendPrometheusText(std::string* out) const;

 private:
  RequestTracerOptions options_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<int64_t> started_{0};
  std::atomic<int64_t> sampled_{0};
  std::atomic<int64_t> slow_{0};
  std::atomic<int64_t> kept_{0};
  std::atomic<int64_t> evicted_{0};
  mutable Mutex mutex_;
  /// Ring of retained traces; once full, `next_slot_` is the oldest entry
  /// and is overwritten next.
  std::vector<RequestTrace> ring_ SURVEYOR_GUARDED_BY(mutex_);
  size_t next_slot_ SURVEYOR_GUARDED_BY(mutex_) = 0;
};

/// RAII request scope: assigns a trace id, installs the thread-local
/// request context (so SURVEYOR_SPANs underneath attach to this request),
/// opens the root span "METHOD /path", and on destruction makes the
/// keep/drop decision and appends one access-log entry. The handler fills
/// in status / response bytes / endpoint via the setters. Must be
/// destroyed on the thread that created it.
class RequestScope {
 public:
  /// `tracer` must outlive the scope; `access_log` may be null (no entry
  /// is appended then).
  RequestScope(RequestTracer* tracer, AccessLog* access_log,
               std::string_view method, std::string_view target);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  void set_status(int status) { context_.trace.status = status; }
  void set_response_bytes(size_t bytes) {
    context_.trace.response_bytes = bytes;
  }
  /// Normalized endpoint name for the per-endpoint counters ("/metrics",
  /// a registered handler prefix, "other"). Defaults to the request path.
  void set_endpoint(std::string_view endpoint) {
    endpoint_.assign(endpoint);
  }

  uint64_t trace_id() const { return context_.trace.trace_id; }
  bool sampled() const { return context_.trace.sampled; }

 private:
  /// Installs/restores the thread-local context; declared before the root
  /// span so the span construction already sees the context installed.
  struct ContextInstaller {
    explicit ContextInstaller(internal::RequestContext* context);
    ~ContextInstaller();
    internal::RequestContext* previous;
  };

  internal::RequestContext context_;
  ContextInstaller installer_;
  ScopedSpan root_span_;
  std::string endpoint_;
};

/// The stats of the request being served on this thread; nullptr when no
/// RequestScope is live. Serving code bumps these unconditionally — the
/// null check is the entire disarmed cost.
RequestStats* CurrentRequestStats();

/// Trace id of the current request (0 when no RequestScope is live).
uint64_t CurrentTraceId();

/// Marks the current request as sampled regardless of the head-sampling
/// decision, so its trace is retained on /tracez. For rare,
/// operator-significant requests (a /reloadz generation swap) whose trace
/// should never be lost to a 1% sampling rate. No-op outside a request.
void ForceSampleCurrentRequest();

/// Trace id of the current request if it was head-sampled, else 0. Metric
/// exemplars use this so every exemplar on /metrics resolves to a trace
/// that /tracez actually retained.
uint64_t CurrentSampledTraceId();

/// Fixed-width lower-case hex rendering of a trace id ("00d7..."), the
/// form /tracez and exemplars use.
std::string TraceIdHex(uint64_t trace_id);

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_REQUEST_TRACE_H_
