#ifndef SURVEYOR_OBS_JSON_WRITER_H_
#define SURVEYOR_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace surveyor {
namespace obs {

/// Minimal streaming JSON writer: handles commas, nesting and string
/// escaping so exporters and the run report cannot emit malformed JSON.
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("n").Value(3).Key("xs").BeginArray()
///       .Value("a").EndArray().EndObject();
///   w.str();  // {"n":3,"xs":["a"]}
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by a value or container.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(bool value);
  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }

  /// Embeds `json` verbatim as one value — it must already be exactly one
  /// well-formed JSON value (e.g. another JsonWriter's str()). Commas and
  /// key bookkeeping are handled; the content is not validated.
  JsonWriter& RawValue(std::string_view json);

  /// The document so far. Call after every container has been closed.
  const std::string& str() const { return out_; }

 private:
  /// Emits a separating comma when needed (before a sibling element).
  void Prefix();

  std::string out_;
  /// One flag per open container: has it emitted an element yet?
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// Appends `text` to `out` with JSON string escaping (no quotes added).
void AppendJsonEscaped(std::string_view text, std::string* out);

/// Renders a double the way JSON expects: integral values without an
/// exponent where possible, non-finite values as null.
std::string JsonNumber(double value);

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_JSON_WRITER_H_
