#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace surveyor {
namespace obs {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // Integral values print without a fraction so counters stay readable.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

void JsonWriter::Prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Prefix();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  SURVEYOR_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prefix();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  SURVEYOR_CHECK(!has_element_.empty());
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Prefix();
  out_ += '"';
  AppendJsonEscaped(key, &out_);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  Prefix();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  Prefix();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  Prefix();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  Prefix();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  Prefix();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  Prefix();
  out_ += '"';
  AppendJsonEscaped(value, &out_);
  out_ += '"';
  return *this;
}

}  // namespace obs
}  // namespace surveyor
