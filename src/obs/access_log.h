#ifndef SURVEYOR_OBS_ACCESS_LOG_H_
#define SURVEYOR_OBS_ACCESS_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/request_trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

/// One completed request as the access log saw it. Written by
/// ~RequestScope for every request (sampled or not), so /requestz shows
/// the full recent traffic while /tracez only shows retained traces.
struct AccessLogEntry {
  /// Monotonically increasing across the log's lifetime; gaps mean the
  /// ring evicted entries in between.
  int64_t sequence = 0;
  /// Wall-clock completion time (unix seconds), for display only.
  double unix_seconds = 0.0;
  std::string method;
  /// Request target (path + query), truncated to a bounded length.
  std::string target;
  /// Normalized endpoint the per-endpoint counters aggregate under.
  std::string endpoint;
  int status = 0;
  size_t response_bytes = 0;
  double latency_seconds = 0.0;
  uint64_t trace_id = 0;
  /// Whether /tracez retained the trace (head-sampled or slow).
  bool sampled = false;
  bool slow = false;
  RequestStats stats;
};

/// Bounded structured access log plus per-endpoint request/error counters
/// for the admin plane itself. Thread-safe; appends are mutex-protected
/// (the admin plane serves one scraper, never a hot loop).
class AccessLog {
 public:
  explicit AccessLog(size_t capacity = kDefaultCapacity);
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Appends one entry (assigning its sequence number), evicting the
  /// oldest when full, and bumps the endpoint counters.
  void Append(AccessLogEntry entry) SURVEYOR_EXCLUDES(mutex_);

  /// The buffered entries, oldest first.
  std::vector<AccessLogEntry> Snapshot() const SURVEYOR_EXCLUDES(mutex_);

  /// The `n` buffered entries with the highest latency, slowest first
  /// (ties broken newest first).
  std::vector<AccessLogEntry> SlowestN(size_t n) const
      SURVEYOR_EXCLUDES(mutex_);

  /// Requests appended across the log's lifetime (including evicted).
  int64_t total_requests() const SURVEYOR_EXCLUDES(mutex_);

  /// (endpoint, requests, errors) sorted by endpoint. An error is any
  /// response with status >= 400.
  struct EndpointCounts {
    std::string endpoint;
    int64_t requests = 0;
    int64_t errors = 0;
  };
  std::vector<EndpointCounts> ByEndpoint() const SURVEYOR_EXCLUDES(mutex_);

  /// Drops all entries and resets counters and sequence numbers.
  void Clear() SURVEYOR_EXCLUDES(mutex_);

  /// Appends Prometheus exposition for the per-endpoint counters:
  ///   surveyor_admin_requests_total{endpoint="/metrics"} 12
  ///   surveyor_admin_request_errors_total{endpoint="/metrics"} 0
  void AppendPrometheusText(std::string* out) const
      SURVEYOR_EXCLUDES(mutex_);

  static constexpr size_t kDefaultCapacity = 512;
  /// Distinct endpoints tracked before new ones fold into "other" — the
  /// counter map must not grow without bound on 404 scans.
  static constexpr size_t kMaxEndpoints = 64;

 private:
  struct Counts {
    int64_t requests = 0;
    int64_t errors = 0;
  };

  const size_t capacity_;
  mutable Mutex mutex_;
  /// Ring of entries; once full, `next_slot_` is the oldest and is
  /// overwritten next.
  std::vector<AccessLogEntry> entries_ SURVEYOR_GUARDED_BY(mutex_);
  size_t next_slot_ SURVEYOR_GUARDED_BY(mutex_) = 0;
  int64_t next_sequence_ SURVEYOR_GUARDED_BY(mutex_) = 0;
  std::map<std::string, Counts> by_endpoint_ SURVEYOR_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_ACCESS_LOG_H_
