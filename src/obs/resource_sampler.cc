#include "obs/resource_sampler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <unistd.h>
#define SURVEYOR_HAVE_POSIX 1
#endif

namespace surveyor {
namespace obs {

namespace {

/// Counts the entries of /proc/self/fd (excluding . and ..); -1 when the
/// directory cannot be opened.
double CountOpenFds() {
#ifdef SURVEYOR_HAVE_POSIX
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1.0;
  double count = 0.0;
  // readdir is only conditionally thread-safe, but each call here walks a
  // private DIR stream, which glibc guarantees is safe.
  while (dirent* entry = readdir(dir)) {  // NOLINT(concurrency-mt-unsafe)
    if (std::strcmp(entry->d_name, ".") == 0 ||
        std::strcmp(entry->d_name, "..") == 0) {
      continue;
    }
    ++count;
  }
  closedir(dir);
  // The opendir itself holds one descriptor; don't count it.
  return count > 0 ? count - 1 : count;
#else
  return -1.0;
#endif
}

/// Parses "VmHWM:   12345 kB" out of /proc/self/status; 0 when absent.
double ReadPeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    double kilobytes = 0.0;
    fields >> kilobytes;
    return kilobytes * 1024.0;
  }
  return 0.0;
}

}  // namespace

bool ResourceSamplingSupported() {
  std::ifstream statm("/proc/self/statm");
  return statm.good();
}

ResourceSample SampleProcessResources() {
  ResourceSample sample;
#ifdef SURVEYOR_HAVE_POSIX
  std::ifstream statm("/proc/self/statm");
  if (!statm.good()) return sample;  // /proc absent: portable no-op.
  double total_pages = 0.0;
  double resident_pages = 0.0;
  statm >> total_pages >> resident_pages;
  const double page_bytes = static_cast<double>(sysconf(_SC_PAGESIZE));
  sample.rss_bytes = resident_pages * page_bytes;
  sample.peak_rss_bytes = ReadPeakRssBytes();

  // /proc/self/stat: the comm field (2) may contain spaces and parens, so
  // parse from the last ')'. After it, field 3 is the state; utime/stime
  // are fields 14/15 and num_threads is field 20 (1-indexed).
  std::ifstream stat_file("/proc/self/stat");
  std::string stat_line;
  if (std::getline(stat_file, stat_line)) {
    const size_t close_paren = stat_line.rfind(')');
    if (close_paren != std::string::npos) {
      std::istringstream fields(stat_line.substr(close_paren + 1));
      std::string token;
      double utime = 0.0, stime = 0.0, num_threads = 0.0;
      // After ')' the next token is field 3.
      for (int field = 3; field <= 20 && (fields >> token); ++field) {
        if (field == 14) utime = std::atof(token.c_str());
        if (field == 15) stime = std::atof(token.c_str());
        if (field == 20) num_threads = std::atof(token.c_str());
      }
      const double ticks_per_second =
          static_cast<double>(sysconf(_SC_CLK_TCK));
      if (ticks_per_second > 0) {
        sample.cpu_seconds = (utime + stime) / ticks_per_second;
      }
      sample.num_threads = num_threads;
    }
  }

  const double fds = CountOpenFds();
  sample.open_fds = fds >= 0 ? fds : 0.0;
  sample.valid = true;
#endif
  return sample;
}

ResourceSampler::ResourceSampler(MetricRegistry* registry,
                                 double interval_seconds)
    : rss_(registry->GetGauge("surveyor_process_rss_bytes")),
      peak_rss_(registry->GetGauge("surveyor_process_peak_rss_bytes")),
      cpu_seconds_(registry->GetGauge("surveyor_process_cpu_seconds_total")),
      open_fds_(registry->GetGauge("surveyor_process_open_fds")),
      threads_(registry->GetGauge("surveyor_process_threads")) {
  registry->SetHelp("surveyor_process_rss_bytes",
                    "Resident set size of this process in bytes.");
  registry->SetHelp("surveyor_process_peak_rss_bytes",
                    "Peak resident set size (VmHWM) in bytes.");
  registry->SetHelp("surveyor_process_cpu_seconds_total",
                    "User plus system CPU seconds consumed.");
  registry->SetHelp("surveyor_process_open_fds",
                    "Open file descriptors.");
  registry->SetHelp("surveyor_process_threads", "Live threads.");
  SampleOnce();
  if (interval_seconds > 0) {
    reporter_ = std::make_unique<ProgressReporter>(interval_seconds,
                                                   [this] { SampleOnce(); });
  }
}

ResourceSampler::~ResourceSampler() {
  reporter_.reset();
  SampleOnce();  // Final reading so short runs report their true peak.
}

void ResourceSampler::SampleOnce() {
  const ResourceSample sample = SampleProcessResources();
  if (!sample.valid) return;
  rss_->Set(sample.rss_bytes);
  peak_rss_->Set(sample.peak_rss_bytes);
  cpu_seconds_->Set(sample.cpu_seconds);
  open_fds_->Set(sample.open_fds);
  threads_->Set(sample.num_threads);
}

}  // namespace obs
}  // namespace surveyor
