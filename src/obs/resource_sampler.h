#ifndef SURVEYOR_OBS_RESOURCE_SAMPLER_H_
#define SURVEYOR_OBS_RESOURCE_SAMPLER_H_

#include <memory>

#include "obs/metrics.h"
#include "obs/progress.h"

namespace surveyor {
namespace obs {

/// One reading of the process's OS resource usage. Populated from
/// /proc/self on Linux; `valid` is false (and every field 0) when /proc
/// is absent, so callers degrade to a no-op on other platforms.
struct ResourceSample {
  bool valid = false;
  double rss_bytes = 0.0;       ///< resident set size (statm)
  double peak_rss_bytes = 0.0;  ///< high-water mark (status VmHWM)
  double cpu_seconds = 0.0;     ///< user+system CPU since process start
  double open_fds = 0.0;        ///< open file descriptors (/proc/self/fd)
  double num_threads = 0.0;     ///< live threads (stat field 20)
};

/// Reads the current process's resource usage from /proc. Cheap enough to
/// call every few hundred milliseconds.
ResourceSample SampleProcessResources();

/// True when /proc/self is readable on this platform.
bool ResourceSamplingSupported();

/// Background thread that periodically samples the OS resource usage of
/// this process into registry gauges — the admin server serves them via
/// /metrics so a scrape shows memory/CPU next to the pipeline counters:
///   surveyor_process_rss_bytes         resident set size
///   surveyor_process_peak_rss_bytes    RSS high-water mark
///   surveyor_process_cpu_seconds_total user+system CPU time
///   surveyor_process_open_fds          open file descriptors
///   surveyor_process_threads           live threads
/// When /proc is absent every gauge stays 0 and the thread idles — a
/// portable no-op.
class ResourceSampler {
 public:
  /// Starts sampling every `interval_seconds` into `registry` (not
  /// owned, must outlive the sampler). Samples once synchronously on
  /// construction so short runs still record their footprint.
  explicit ResourceSampler(MetricRegistry* registry,
                           double interval_seconds = 1.0);
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Takes one sample now (also what the background thread calls).
  void SampleOnce();

 private:
  Gauge* rss_;
  Gauge* peak_rss_;
  Gauge* cpu_seconds_;
  Gauge* open_fds_;
  Gauge* threads_;
  std::unique_ptr<ProgressReporter> reporter_;
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_RESOURCE_SAMPLER_H_
