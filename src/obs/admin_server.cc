#include "obs/admin_server.h"

#include <cerrno>
#include <system_error>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define SURVEYOR_HAVE_SOCKETS 1
#endif

#include "obs/json_writer.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace surveyor {
namespace obs {

namespace {

std::string_view StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    case 503:
      return "503 Service Unavailable";
    default:
      return "500 Internal Server Error";
  }
}

/// Strips the query string: "/logz?n=5" -> "/logz".
std::string_view PathOf(std::string_view target) {
  const size_t query = target.find('?');
  return query == std::string_view::npos ? target : target.substr(0, query);
}

}  // namespace

AdminServer::AdminServer(const MetricRegistry* registry,
                         const StageTracker* stage, const LogRing* log_ring,
                         AdminServerOptions options)
    : registry_(registry),
      stage_(stage),
      log_ring_(log_ring),
      options_(std::move(options)) {
  SURVEYOR_CHECK(registry_ != nullptr);
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::AddHandler(std::string prefix, AdminHandler handler) {
  SURVEYOR_CHECK(listen_fd_ < 0) << "AddHandler after Start()";
  handlers_.emplace_back(std::move(prefix), std::move(handler));
}

AdminResponse AdminServer::Handle(std::string_view method,
                                  std::string_view target,
                                  std::string_view body) const {
  const std::string_view path = PathOf(target);
  // Registered endpoints first, longest prefix wins; they own their
  // method policy (POST included).
  const AdminHandler* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, handler] : handlers_) {
    const bool matches =
        path.size() >= prefix.size() && path.substr(0, prefix.size()) == prefix &&
        (path.size() == prefix.size() || path[prefix.size()] == '/' ||
         path[prefix.size()] == '?' || prefix.back() == '/');
    if (matches && prefix.size() >= best_len) {
      best = &handler;
      best_len = prefix.size();
    }
  }
  if (best != nullptr) return (*best)(method, target, body);
  if (method != "GET" && method != "HEAD") {
    AdminResponse response;
    response.status = 405;
    response.body = "only GET is supported\n";
    return response;
  }
  if (path == "/metrics") return MetricsText();
  if (path == "/metrics.json") return MetricsJson();
  if (path == "/healthz") return Healthz();
  if (path == "/readyz") return Readyz();
  if (path == "/statusz") return Statusz();
  if (path == "/logz") return Logz();
  if (path == "/" || path.empty()) return Index();
  AdminResponse response;
  response.status = 404;
  response.body = "unknown endpoint; see /\n";
  return response;
}

AdminResponse AdminServer::MetricsText() const {
  AdminResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = registry_->ToPrometheusText();
  if (log_ring_ != nullptr) {
    log_ring_->AppendPrometheusText(&response.body);
  }
  return response;
}

AdminResponse AdminServer::MetricsJson() const {
  AdminResponse response;
  response.content_type = "application/json";
  response.body = registry_->ToJson() + "\n";
  return response;
}

AdminResponse AdminServer::Healthz() const {
  AdminResponse response;
  // Degraded stays 200: the process is alive and serving; probes must not
  // restart it for quarantined documents or SMV-fallback pairs. Dashboards
  // read the body (and /statusz) for the flag.
  response.body = (stage_ != nullptr && stage_->degraded()) ? "degraded\n"
                                                            : "ok\n";
  return response;
}

AdminResponse AdminServer::Readyz() const {
  AdminResponse response;
  if (stage_ == nullptr) {
    response.body = "ok\n";
    return response;
  }
  const PipelineStage stage = stage_->stage();
  response.status = stage_->ready() ? 200 : 503;
  response.body = std::string(PipelineStageName(stage)) + "\n";
  return response;
}

AdminResponse AdminServer::Statusz() const {
  JsonWriter writer;
  writer.BeginObject();
  if (stage_ != nullptr) {
    writer.Key("stage").Value(PipelineStageName(stage_->stage()));
    writer.Key("ready").Value(stage_->ready());
    writer.Key("degraded").Value(stage_->degraded());
    writer.Key("uptime_seconds").Value(stage_->UptimeSeconds());
    writer.Key("stage_seconds").BeginObject();
    for (const auto& [name, seconds] : stage_->StageSeconds()) {
      writer.Key(name).Value(seconds);
    }
    writer.EndObject();
  }
  // The live span stack per thread: what every worker is doing right now.
  writer.Key("active_spans").BeginArray();
  for (const ActiveSpan& span : Tracer::Global().ActiveSpans()) {
    writer.BeginObject()
        .Key("thread")
        .Value(static_cast<int64_t>(span.thread_index))
        .Key("name")
        .Value(span.name)
        .Key("id")
        .Value(span.id)
        .Key("parent_id")
        .Value(span.parent_id)
        .Key("start_seconds")
        .Value(span.start_seconds)
        .EndObject();
  }
  writer.EndArray();
  if (log_ring_ != nullptr) {
    writer.Key("log_messages").BeginObject();
    for (const LogSeverity severity :
         {LogSeverity::kInfo, LogSeverity::kWarning, LogSeverity::kError,
          LogSeverity::kFatal}) {
      writer.Key(LogSeverityLabel(severity))
          .Value(log_ring_->MessageCount(severity));
    }
    writer.EndObject();
  }
  writer.EndObject();
  AdminResponse response;
  response.content_type = "application/json";
  response.body = writer.str() + "\n";
  return response;
}

AdminResponse AdminServer::Logz() const {
  AdminResponse response;
  if (log_ring_ == nullptr) return response;
  std::vector<LogRing::Line> lines = log_ring_->Snapshot();
  const size_t keep = options_.max_log_lines;
  const size_t begin = lines.size() > keep ? lines.size() - keep : 0;
  for (size_t i = begin; i < lines.size(); ++i) {
    response.body += StrFormat("%lld %s %s\n",
                               static_cast<long long>(lines[i].sequence),
                               std::string(LogSeverityLabel(lines[i].severity))
                                   .c_str(),
                               lines[i].text.c_str());
  }
  return response;
}

AdminResponse AdminServer::Index() const {
  AdminResponse response;
  response.body =
      "surveyor admin server\n"
      "  /metrics       Prometheus text exposition\n"
      "  /metrics.json  metrics as JSON\n"
      "  /healthz       liveness\n"
      "  /readyz        pipeline-stage readiness\n"
      "  /statusz       stage, stage seconds, live spans, log counters\n"
      "  /logz          recent log lines\n";
  return response;
}

#ifdef SURVEYOR_HAVE_SOCKETS

Status AdminServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("admin server already started");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("admin port out of range");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket(): " +
                            std::system_category().message(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // std::strerror is not thread-safe (concurrency-mt-unsafe); the
    // system_category message is.
    const std::string error = std::system_category().message(errno);
    ::close(fd);
    return Status::Internal("bind(" + options_.bind_address + ":" +
                            std::to_string(options_.port) + "): " + error);
  }
  if (::listen(fd, /*backlog=*/16) != 0) {
    const std::string error = std::system_category().message(errno);
    ::close(fd);
    return Status::Internal("listen(): " + error);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  stopping_.store(false);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminServer::AcceptLoop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load()) {
      if (client >= 0) ::close(client);
      return;
    }
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // Listening socket gone; nothing sensible left to do.
    }
    ServeConnection(client);
  }
}

void AdminServer::ServeConnection(int client_fd) const {
  // Read until the end of the request head (or a defensive cap).
  std::string request;
  char buffer[1024];
  size_t head_end = std::string::npos;
  size_t body_start = 0;
  while (request.size() < 8192) {
    head_end = request.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      body_start = head_end + 4;
      break;
    }
    head_end = request.find("\n\n");
    if (head_end != std::string::npos) {
      body_start = head_end + 2;
      break;
    }
    const ssize_t n = ::read(client_fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    request.append(buffer, static_cast<size_t>(n));
  }

  // Parse the request line: METHOD SP TARGET SP VERSION.
  std::string method = "GET";
  std::string target = "/";
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t method_end = line.find(' ');
  if (method_end != std::string::npos) {
    method = line.substr(0, method_end);
    const size_t target_end = line.find(' ', method_end + 1);
    target = line.substr(method_end + 1,
                         target_end == std::string::npos
                             ? std::string::npos
                             : target_end - method_end - 1);
  }

  // Drain the body when the head announced one (POST /query/batch). The
  // cap bounds what a misbehaving client can make the single-threaded
  // plane buffer.
  constexpr size_t kMaxBodyBytes = 1 << 20;
  size_t content_length = 0;
  if (head_end != std::string::npos) {
    const std::string head_lower = ToLower(request.substr(0, head_end));
    const size_t header = head_lower.find("content-length:");
    if (header != std::string::npos) {
      size_t pos = header + 15;
      while (pos < head_lower.size() && head_lower[pos] == ' ') ++pos;
      while (pos < head_lower.size() && head_lower[pos] >= '0' &&
             head_lower[pos] <= '9' && content_length <= kMaxBodyBytes) {
        content_length = content_length * 10 + (head_lower[pos] - '0');
        ++pos;
      }
    }
  }
  std::string body;
  if (content_length > 0 && content_length <= kMaxBodyBytes &&
      head_end != std::string::npos) {
    body = request.substr(body_start);
    while (body.size() < content_length) {
      const ssize_t n = ::read(client_fd, buffer, sizeof(buffer));
      if (n <= 0) break;
      body.append(buffer, static_cast<size_t>(n));
    }
    if (body.size() > content_length) body.resize(content_length);
  }

  const AdminResponse response = Handle(method, target, body);
  std::string head = "HTTP/1.0 " + std::string(StatusLine(response.status)) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  std::string out = std::move(head);
  if (method != "HEAD") out += response.body;
  size_t written = 0;
  while (written < out.size()) {
    const ssize_t n =
        ::write(client_fd, out.data() + written, out.size() - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
  ::close(client_fd);
}

void AdminServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  // Unblock the accept(): shutdown() wakes it on Linux...
  ::shutdown(listen_fd_, SHUT_RDWR);
  // ...and a best-effort self-connect covers platforms where it does not.
  const int self = ::socket(AF_INET, SOCK_STREAM, 0);
  if (self >= 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(self, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(self);
  }
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

#else  // !SURVEYOR_HAVE_SOCKETS

Status AdminServer::Start() {
  return Status::Unimplemented("admin server needs POSIX sockets");
}

void AdminServer::AcceptLoop() {}

void AdminServer::ServeConnection(int) const {}

void AdminServer::Stop() {}

#endif  // SURVEYOR_HAVE_SOCKETS

}  // namespace obs
}  // namespace surveyor
