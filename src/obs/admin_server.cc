#include "obs/admin_server.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/statusor.h"
#include "util/string_util.h"

namespace surveyor {
namespace obs {

namespace {

/// Strips the query string: "/logz?n=5" -> "/logz".
std::string_view PathOf(std::string_view target) {
  const size_t query = target.find('?');
  return query == std::string_view::npos ? target : target.substr(0, query);
}

/// Value of `key` in the target's query string, "" when absent:
/// QueryParam("/tracez?format=text", "format") == "text".
std::string_view QueryParam(std::string_view target, std::string_view key) {
  const size_t question = target.find('?');
  if (question == std::string_view::npos) return {};
  std::string_view query = target.substr(question + 1);
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
  }
  return {};
}

/// Parses a non-negative integer query parameter, `fallback` when absent
/// or malformed.
size_t SizeParam(std::string_view target, std::string_view key,
                 size_t fallback) {
  const std::string_view raw = QueryParam(target, key);
  if (raw.empty()) return fallback;
  size_t value = 0;
  for (const char c : raw) {
    if (c < '0' || c > '9') return fallback;
    if (value > (std::numeric_limits<size_t>::max() - 9) / 10) return fallback;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  return value;
}

std::string MicrosLabel(double seconds) {
  return std::to_string(static_cast<long long>(seconds * 1e6)) + "us";
}

/// Children indices per span, built once per trace from the parent links.
std::vector<std::vector<size_t>> SpanChildren(
    const std::vector<TraceSpan>& spans) {
  std::vector<std::vector<size_t>> children(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = 0; j < spans.size(); ++j) {
      if (i != j && spans[j].parent_id == spans[i].id) {
        children[i].push_back(j);
      }
    }
  }
  return children;
}

/// A span is a tree root when its parent is not in the trace (the request
/// root span's parent is whatever enclosed the scope, usually 0).
bool IsRootSpan(const std::vector<TraceSpan>& spans, size_t index) {
  for (size_t j = 0; j < spans.size(); ++j) {
    if (j != index && spans[j].id == spans[index].parent_id) return false;
  }
  return true;
}

void WriteSpanTreeJson(const std::vector<TraceSpan>& spans,
                       const std::vector<std::vector<size_t>>& children,
                       size_t index, JsonWriter& writer) {
  const TraceSpan& span = spans[index];
  writer.BeginObject()
      .Key("name")
      .Value(span.name)
      .Key("id")
      .Value(span.id)
      .Key("start_seconds")
      .Value(span.start_seconds)
      .Key("duration_seconds")
      .Value(span.duration_seconds)
      .Key("children")
      .BeginArray();
  for (const size_t child : children[index]) {
    WriteSpanTreeJson(spans, children, child, writer);
  }
  writer.EndArray().EndObject();
}

void WriteSpanTreeText(const std::vector<TraceSpan>& spans,
                       const std::vector<std::vector<size_t>>& children,
                       size_t index, int depth, std::string* out) {
  const TraceSpan& span = spans[index];
  out->append(static_cast<size_t>(2 * (depth + 1)), ' ');
  *out += span.name + " " + MicrosLabel(span.duration_seconds) + "\n";
  for (const size_t child : children[index]) {
    WriteSpanTreeText(spans, children, child, depth + 1, out);
  }
}

}  // namespace

namespace {

RequestTracerOptions TracerOptionsFrom(const AdminServerOptions& options) {
  RequestTracerOptions tracer;
  tracer.sample_rate = options.trace_sample_rate;
  tracer.slow_threshold_seconds = options.slow_query_ms / 1000.0;
  tracer.ring_capacity = options.trace_ring_capacity;
  return tracer;
}

}  // namespace

AdminServer::AdminServer(const MetricRegistry* registry,
                         const StageTracker* stage, const LogRing* log_ring,
                         AdminServerOptions options)
    : registry_(registry),
      stage_(stage),
      log_ring_(log_ring),
      options_(std::move(options)),
      request_tracer_(TracerOptionsFrom(options_)),
      access_log_(options_.access_log_capacity == 0
                      ? 1
                      : options_.access_log_capacity) {
  SURVEYOR_CHECK(registry_ != nullptr);
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::AddHandler(std::string prefix, AdminHandler handler) {
  SURVEYOR_CHECK(http_ == nullptr) << "AddHandler after Start()";
  handlers_.emplace_back(std::move(prefix), std::move(handler));
}

void AdminServer::AddStatusSection(std::string key, StatusSection section) {
  SURVEYOR_CHECK(http_ == nullptr) << "AddStatusSection after Start()";
  status_sections_.emplace_back(std::move(key), std::move(section));
}

void AdminServer::AddMetricsHook(MetricsHook hook) {
  SURVEYOR_CHECK(http_ == nullptr) << "AddMetricsHook after Start()";
  metrics_hooks_.push_back(std::move(hook));
}

AdminResponse AdminServer::Handle(std::string_view method,
                                  std::string_view target,
                                  std::string_view body) const {
  RequestScope scope(&request_tracer_,
                     options_.access_log_capacity == 0 ? nullptr
                                                       : &access_log_,
                     method, target);
  const AdminResponse response = Dispatch(method, target, body, &scope);
  scope.set_status(response.status);
  scope.set_response_bytes(response.body.size());
  return response;
}

AdminResponse AdminServer::Dispatch(std::string_view method,
                                    std::string_view target,
                                    std::string_view body,
                                    RequestScope* scope) const {
  const std::string_view path = PathOf(target);
  // Registered endpoints first, longest prefix wins; they own their
  // method policy (POST included).
  const AdminHandler* best = nullptr;
  std::string_view best_prefix;
  size_t best_len = 0;
  for (const auto& [prefix, handler] : handlers_) {
    const bool matches =
        path.size() >= prefix.size() && path.substr(0, prefix.size()) == prefix &&
        (path.size() == prefix.size() || path[prefix.size()] == '/' ||
         path[prefix.size()] == '?' || prefix.back() == '/');
    if (matches && prefix.size() >= best_len) {
      best = &handler;
      best_prefix = prefix;
      best_len = prefix.size();
    }
  }
  if (best != nullptr) {
    // Endpoint counters aggregate under the registered prefix, not the
    // full path, so "/query?entity=x" and "/query/batch" share a series.
    scope->set_endpoint(best_prefix);
    return (*best)(method, target, body);
  }
  if (method != "GET" && method != "HEAD") {
    scope->set_endpoint("other");
    AdminResponse response;
    response.status = 405;
    response.body = "only GET is supported\n";
    return response;
  }
  if (path == "/metrics") return MetricsText();
  if (path == "/metrics.json") return MetricsJson();
  if (path == "/healthz") return Healthz();
  if (path == "/readyz") return Readyz();
  if (path == "/statusz") return Statusz();
  if (path == "/logz") return Logz();
  if (path == "/tracez") return Tracez(target);
  if (path == "/requestz") return Requestz(target);
  if (path == "/profilez") return Profilez(target);
  if (path == "/" || path.empty()) return Index();
  // Unknown paths share one counter series — a 404 scan must not mint
  // per-path label values.
  scope->set_endpoint("other");
  AdminResponse response;
  response.status = 404;
  response.body = "unknown endpoint; see /\n";
  return response;
}

AdminResponse AdminServer::MetricsText() const {
  for (const MetricsHook& hook : metrics_hooks_) hook();
  AdminResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = registry_->ToPrometheusText();
  if (log_ring_ != nullptr) {
    log_ring_->AppendPrometheusText(&response.body);
  }
  request_tracer_.AppendPrometheusText(&response.body);
  if (options_.access_log_capacity > 0) {
    access_log_.AppendPrometheusText(&response.body);
  }
  return response;
}

AdminResponse AdminServer::MetricsJson() const {
  for (const MetricsHook& hook : metrics_hooks_) hook();
  AdminResponse response;
  response.content_type = "application/json";
  response.body = registry_->ToJson() + "\n";
  return response;
}

AdminResponse AdminServer::Healthz() const {
  AdminResponse response;
  // Degraded stays 200: the process is alive and serving; probes must not
  // restart it for quarantined documents or SMV-fallback pairs. Dashboards
  // read the body (and /statusz) for the flag.
  response.body = (stage_ != nullptr && stage_->degraded()) ? "degraded\n"
                                                            : "ok\n";
  return response;
}

AdminResponse AdminServer::Readyz() const {
  AdminResponse response;
  if (stage_ == nullptr) {
    response.body = "ok\n";
    return response;
  }
  const PipelineStage stage = stage_->stage();
  response.status = stage_->ready() ? 200 : 503;
  response.body = std::string(PipelineStageName(stage)) + "\n";
  return response;
}

AdminResponse AdminServer::Statusz() const {
  JsonWriter writer;
  writer.BeginObject();
  // Binary identity first: anything read off this page (and any profile
  // taken from this process) is attributable to an exact build.
  AppendBuildInfoJson(writer);
  if (stage_ != nullptr) {
    writer.Key("stage").Value(PipelineStageName(stage_->stage()));
    writer.Key("ready").Value(stage_->ready());
    writer.Key("degraded").Value(stage_->degraded());
    writer.Key("uptime_seconds").Value(stage_->UptimeSeconds());
    writer.Key("stage_seconds").BeginObject();
    for (const auto& [name, seconds] : stage_->StageSeconds()) {
      writer.Key(name).Value(seconds);
    }
    writer.EndObject();
  }
  // The live span stack per thread: what every worker is doing right now.
  writer.Key("active_spans").BeginArray();
  for (const ActiveSpan& span : Tracer::Global().ActiveSpans()) {
    writer.BeginObject()
        .Key("thread")
        .Value(static_cast<int64_t>(span.thread_index))
        .Key("name")
        .Value(span.name)
        .Key("id")
        .Value(span.id)
        .Key("parent_id")
        .Value(span.parent_id)
        .Key("start_seconds")
        .Value(span.start_seconds)
        .EndObject();
  }
  writer.EndArray();
  if (log_ring_ != nullptr) {
    writer.Key("log_messages").BeginObject();
    for (const LogSeverity severity :
         {LogSeverity::kInfo, LogSeverity::kWarning, LogSeverity::kError,
          LogSeverity::kFatal}) {
      writer.Key(LogSeverityLabel(severity))
          .Value(log_ring_->MessageCount(severity));
    }
    writer.EndObject();
  }
  for (const auto& [key, section] : status_sections_) {
    writer.Key(key);
    section(writer);
  }
  writer.EndObject();
  AdminResponse response;
  response.content_type = "application/json";
  response.body = writer.str() + "\n";
  return response;
}

AdminResponse AdminServer::Logz() const {
  AdminResponse response;
  if (log_ring_ == nullptr) return response;
  std::vector<LogRing::Line> lines = log_ring_->Snapshot();
  const size_t keep = options_.max_log_lines;
  const size_t begin = lines.size() > keep ? lines.size() - keep : 0;
  for (size_t i = begin; i < lines.size(); ++i) {
    response.body += StrFormat("%lld %s %s\n",
                               static_cast<long long>(lines[i].sequence),
                               std::string(LogSeverityLabel(lines[i].severity))
                                   .c_str(),
                               lines[i].text.c_str());
  }
  return response;
}

AdminResponse AdminServer::Tracez(std::string_view target) const {
  const std::vector<RequestTrace> traces = request_tracer_.Snapshot();
  AdminResponse response;
  if (QueryParam(target, "format") == "text") {
    std::string& out = response.body;
    for (const RequestTrace& trace : traces) {
      out += "trace " + TraceIdHex(trace.trace_id) + " " + trace.method +
             " " + trace.target + " status=" +
             std::to_string(trace.status) + " " +
             MicrosLabel(trace.duration_seconds) +
             (trace.sampled ? " sampled" : "") + (trace.slow ? " slow" : "") +
             " hits=" + std::to_string(trace.stats.cache_hits) +
             " misses=" + std::to_string(trace.stats.cache_misses) +
             " retries=" + std::to_string(trace.stats.retries) + "\n";
      const std::vector<std::vector<size_t>> children =
          SpanChildren(trace.spans);
      for (size_t i = 0; i < trace.spans.size(); ++i) {
        if (IsRootSpan(trace.spans, i)) {
          WriteSpanTreeText(trace.spans, children, i, 0, &out);
        }
      }
    }
    if (out.empty()) out = "no traces retained yet\n";
    return response;
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("requests_started").Value(request_tracer_.requests_started());
  writer.Key("requests_sampled").Value(request_tracer_.requests_sampled());
  writer.Key("requests_slow").Value(request_tracer_.requests_slow());
  writer.Key("traces_kept").Value(request_tracer_.traces_kept());
  writer.Key("traces_evicted").Value(request_tracer_.traces_evicted());
  writer.Key("traces").BeginArray();
  for (const RequestTrace& trace : traces) {
    writer.BeginObject()
        .Key("trace_id")
        .Value(TraceIdHex(trace.trace_id))
        .Key("sampled")
        .Value(trace.sampled)
        .Key("slow")
        .Value(trace.slow)
        .Key("method")
        .Value(trace.method)
        .Key("target")
        .Value(trace.target)
        .Key("status")
        .Value(trace.status)
        .Key("response_bytes")
        .Value(static_cast<int64_t>(trace.response_bytes))
        .Key("start_unix_seconds")
        .Value(trace.start_unix_seconds)
        .Key("duration_seconds")
        .Value(trace.duration_seconds)
        .Key("cache_hits")
        .Value(trace.stats.cache_hits)
        .Key("cache_misses")
        .Value(trace.stats.cache_misses)
        .Key("retries")
        .Value(trace.stats.retries)
        .Key("dropped_spans")
        .Value(trace.dropped_spans)
        .Key("spans")
        .BeginArray();
    const std::vector<std::vector<size_t>> children =
        SpanChildren(trace.spans);
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      if (IsRootSpan(trace.spans, i)) {
        WriteSpanTreeJson(trace.spans, children, i, writer);
      }
    }
    writer.EndArray().EndObject();
  }
  writer.EndArray().EndObject();
  response.content_type = "application/json";
  response.body = writer.str() + "\n";
  return response;
}

AdminResponse AdminServer::Requestz(std::string_view target) const {
  // ?slowest=N serves the worst-latency entries; the default is the most
  // recent ones, newest first.
  const size_t slowest = SizeParam(target, "slowest", 0);
  std::vector<AccessLogEntry> entries;
  if (slowest > 0) {
    entries = access_log_.SlowestN(slowest);
  } else {
    entries = access_log_.Snapshot();
    std::reverse(entries.begin(), entries.end());
    const size_t keep = SizeParam(target, "n", 100);
    if (entries.size() > keep) entries.resize(keep);
  }
  AdminResponse response;
  if (QueryParam(target, "format") == "text") {
    std::string& out = response.body;
    for (const AccessLogEntry& entry : entries) {
      out += std::to_string(entry.sequence) + " " + entry.method + " " +
             entry.target + " status=" + std::to_string(entry.status) + " " +
             std::to_string(entry.response_bytes) + "b " +
             MicrosLabel(entry.latency_seconds) + " trace=" +
             TraceIdHex(entry.trace_id) + (entry.sampled ? " sampled" : "") +
             (entry.slow ? " slow" : "") + "\n";
    }
    if (out.empty()) out = "no requests logged yet\n";
    return response;
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("total_requests").Value(access_log_.total_requests());
  writer.Key("requests").BeginArray();
  for (const AccessLogEntry& entry : entries) {
    writer.BeginObject()
        .Key("sequence")
        .Value(entry.sequence)
        .Key("unix_seconds")
        .Value(entry.unix_seconds)
        .Key("method")
        .Value(entry.method)
        .Key("target")
        .Value(entry.target)
        .Key("endpoint")
        .Value(entry.endpoint)
        .Key("status")
        .Value(entry.status)
        .Key("response_bytes")
        .Value(static_cast<int64_t>(entry.response_bytes))
        .Key("latency_seconds")
        .Value(entry.latency_seconds)
        .Key("trace_id")
        .Value(TraceIdHex(entry.trace_id))
        .Key("sampled")
        .Value(entry.sampled)
        .Key("slow")
        .Value(entry.slow)
        .Key("cache_hits")
        .Value(entry.stats.cache_hits)
        .Key("cache_misses")
        .Value(entry.stats.cache_misses)
        .Key("retries")
        .Value(entry.stats.retries)
        .EndObject();
  }
  writer.EndArray().EndObject();
  response.content_type = "application/json";
  response.body = writer.str() + "\n";
  return response;
}

AdminResponse AdminServer::Profilez(std::string_view target) const {
  AdminResponse response;
  // seconds: the profile window, (0, 30]. Parsed as a double so sub-second
  // smoke windows work (?seconds=0.2).
  double seconds = 1.0;
  const std::string seconds_raw(QueryParam(target, "seconds"));
  if (!seconds_raw.empty()) {
    char* end = nullptr;
    seconds = std::strtod(seconds_raw.c_str(), &end);
    if (end == seconds_raw.c_str() || *end != '\0' || !(seconds > 0.0) ||
        seconds > 30.0) {
      response.status = 400;
      response.body = "seconds must be a number in (0, 30]\n";
      return response;
    }
  }
  const std::string_view format = QueryParam(target, "format");
  if (!format.empty() && format != "folded" && format != "json") {
    response.status = 400;
    response.body = "format must be folded or json\n";
    return response;
  }
  ProfilerOptions options;
  options.stage_tracker = stage_;
  options.metrics = options_.profiler_metrics;
  const StatusOr<ProfileResult> result =
      Profiler::Global().ProfileFor(seconds, options);
  if (!result.ok()) {
    switch (result.status().code()) {
      case StatusCode::kFailedPrecondition:
        response.status = 409;  // another profile window is open
        break;
      case StatusCode::kUnimplemented:
        response.status = 501;  // sanitizer build / unsupported platform
        break;
      default:
        response.status = 500;
    }
    response.body = result.status().ToString() + "\n";
    return response;
  }
  if (format == "json") {
    response.content_type = "application/json";
    response.body = result.value().ToJson() + "\n";
  } else {
    response.body = result.value().ToFolded();
    if (response.body.empty()) {
      // Zero samples is a valid profile of an idle process; keep the
      // response non-empty so shell pipelines notice the difference
      // between "idle" and "broken".
      response.body = "# no samples (process idle during the window)\n";
    }
  }
  return response;
}

AdminResponse AdminServer::Index() const {
  AdminResponse response;
  response.body =
      "surveyor admin server\n"
      "  /metrics       Prometheus text exposition\n"
      "  /metrics.json  metrics as JSON\n"
      "  /healthz       liveness\n"
      "  /readyz        pipeline-stage readiness\n"
      "  /statusz       build info, stage, stage seconds, live spans, "
      "log counters\n"
      "  /logz          recent log lines\n"
      "  /tracez        retained request traces (?format=text)\n"
      "  /requestz      recent requests (?slowest=N, ?format=text)\n"
      "  /profilez      CPU profile (?seconds=N, ?format=folded|json)\n";
  return response;
}

Status AdminServer::Start() {
  if (http_ != nullptr) {
    return Status::FailedPrecondition("admin server already started");
  }
  HttpServerOptions http_options;
  http_options.port = options_.port;
  http_options.bind_address = options_.bind_address;
  http_options.num_workers = options_.serve_workers;
  http_options.handler_threads = options_.handler_threads;
  http_options.max_connections = options_.max_connections;
  http_options.queue_high_water = options_.queue_high_water;
  http_options.idle_timeout_seconds = options_.idle_timeout_seconds;
  http_options.drain_seconds = options_.drain_seconds;
  // Transport metrics (connection gauge, queue depth, shed count) land in
  // the writable registry when one is injected, so /metrics scrapes the
  // serving tier's own health alongside the application's.
  http_options.metrics = options_.profiler_metrics;
  http_ = std::make_unique<HttpServer>(
      [this](std::string_view method, std::string_view target,
             std::string_view body) { return Handle(method, target, body); },
      std::move(http_options));
  const Status status = http_->Start();
  if (!status.ok()) {
    http_.reset();
    return status;
  }
  port_ = http_->port();
  return Status::OK();
}

void AdminServer::Stop() {
  if (http_ == nullptr) return;
  http_->Stop();
  http_.reset();
}

}  // namespace obs
}  // namespace surveyor
