#include "obs/report.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json_writer.h"

namespace surveyor {
namespace obs {

void EmAggregateDiagnostics::Add(EmFitDiagnostics fit) {
  ++fits;
  if (fit.converged) ++converged;
  total_iterations += fit.iterations;
  total_log_likelihood += fit.log_likelihood;
  const double chi2 = fit.worst_chi2();
  sum_worst_chi2 += chi2;
  if (chi2 > max_chi2) max_chi2 = chi2;
  worst_fits.push_back(std::move(fit));
  std::sort(worst_fits.begin(), worst_fits.end(),
            [](const EmFitDiagnostics& a, const EmFitDiagnostics& b) {
              if (a.worst_chi2() != b.worst_chi2()) {
                return a.worst_chi2() > b.worst_chi2();
              }
              if (a.type_name != b.type_name) return a.type_name < b.type_name;
              return a.property < b.property;
            });
  if (worst_fits.size() > static_cast<size_t>(max_worst_fits)) {
    worst_fits.resize(static_cast<size_t>(max_worst_fits));
  }
}

double RunReport::MetricValue(const std::string& name) const {
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name) return metric.value;
  }
  return 0.0;
}

namespace {

void WriteMetric(const MetricSnapshot& metric, JsonWriter& writer) {
  writer.BeginObject()
      .Key("name")
      .Value(metric.name)
      .Key("kind")
      .Value(MetricKindName(metric.kind))
      .Key("value")
      .Value(metric.value);
  if (metric.kind == MetricSnapshot::Kind::kHistogram) {
    writer.Key("count").Value(metric.count).Key("bounds").BeginArray();
    for (const double bound : metric.bucket_bounds) writer.Value(bound);
    writer.EndArray().Key("buckets").BeginArray();
    for (const int64_t count : metric.bucket_counts) writer.Value(count);
    writer.EndArray();
  }
  writer.EndObject();
}

void WriteSpanTree(const std::vector<TraceSpan>& spans, size_t index,
                   const std::unordered_map<uint64_t, std::vector<size_t>>&
                       children_of,
                   JsonWriter& writer) {
  const TraceSpan& span = spans[index];
  writer.BeginObject()
      .Key("name")
      .Value(span.name)
      .Key("id")
      .Value(span.id)
      .Key("thread")
      .Value(static_cast<int64_t>(span.thread_index))
      .Key("start_seconds")
      .Value(span.start_seconds)
      .Key("duration_seconds")
      .Value(span.duration_seconds);
  const auto children = children_of.find(span.id);
  if (children != children_of.end()) {
    writer.Key("children").BeginArray();
    for (const size_t child : children->second) {
      WriteSpanTree(spans, child, children_of, writer);
    }
    writer.EndArray();
  }
  writer.EndObject();
}

void WriteEmFit(const EmFitDiagnostics& fit, JsonWriter& writer) {
  writer.BeginObject()
      .Key("type")
      .Value(fit.type_name)
      .Key("property")
      .Value(fit.property)
      .Key("total_statements")
      .Value(fit.total_statements)
      .Key("iterations")
      .Value(fit.iterations)
      .Key("converged")
      .Value(fit.converged)
      .Key("log_likelihood")
      .Value(fit.log_likelihood)
      .Key("aic")
      .Value(fit.aic)
      .Key("chi2_positive")
      .Value(fit.chi2_positive)
      .Key("chi2_negative")
      .Value(fit.chi2_negative)
      .EndObject();
}

}  // namespace

std::string RunReport::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("label").Value(label);

  writer.Key("stage_seconds").BeginObject();
  for (const auto& [stage, seconds] : stage_seconds) {
    writer.Key(stage + "_seconds").Value(seconds);
  }
  writer.EndObject();

  writer.Key("pipeline_stats").BeginObject();
  for (const auto& [name, value] : pipeline_stats) {
    writer.Key(name).Value(value);
  }
  writer.EndObject();

  writer.Key("metrics").BeginArray();
  for (const MetricSnapshot& metric : metrics) WriteMetric(metric, writer);
  writer.EndArray();

  writer.Key("em_diagnostics")
      .BeginObject()
      .Key("fits")
      .Value(em.fits)
      .Key("converged")
      .Value(em.converged)
      .Key("total_iterations")
      .Value(em.total_iterations)
      .Key("mean_iterations")
      .Value(em.mean_iterations())
      .Key("total_log_likelihood")
      .Value(em.total_log_likelihood)
      .Key("max_chi2")
      .Value(em.max_chi2)
      .Key("mean_worst_chi2")
      .Value(em.mean_worst_chi2())
      .Key("worst_fits")
      .BeginArray();
  for (const EmFitDiagnostics& fit : em.worst_fits) WriteEmFit(fit, writer);
  writer.EndArray().EndObject();

  writer.Key("degradation")
      .BeginObject()
      .Key("degraded")
      .Value(degradation.degraded)
      .Key("retries")
      .Value(degradation.retries)
      .Key("faults_injected")
      .Value(degradation.faults_injected)
      .Key("docs_quarantined")
      .Value(degradation.docs_quarantined)
      .Key("pairs_degraded")
      .Value(degradation.pairs_degraded)
      .Key("degraded_pairs")
      .BeginArray();
  for (const DegradedPairInfo& pair : degradation.degraded_pairs) {
    writer.BeginObject()
        .Key("type")
        .Value(pair.type_name)
        .Key("property")
        .Value(pair.property)
        .Key("reason")
        .Value(pair.reason)
        .EndObject();
  }
  writer.EndArray().Key("notes").BeginArray();
  for (const std::string& note : degradation.notes) writer.Value(note);
  writer.EndArray().EndObject();

  // Spans come sorted by start time, so parents appear before children;
  // roots are spans whose parent is 0 or missing (dropped).
  std::unordered_map<uint64_t, std::vector<size_t>> children_of;
  std::unordered_map<uint64_t, bool> present;
  for (const TraceSpan& span : spans) present[span.id] = true;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (span.parent_id != 0 && present.count(span.parent_id) > 0) {
      children_of[span.parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  writer.Key("dropped_spans").Value(dropped_spans);
  writer.Key("spans").BeginArray();
  for (const size_t root : roots) {
    WriteSpanTree(spans, root, children_of, writer);
  }
  writer.EndArray();

  writer.EndObject();
  return writer.str();
}

}  // namespace obs
}  // namespace surveyor
