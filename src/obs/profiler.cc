#include "obs/profiler.h"

#include <algorithm>
#include <cerrno>
#include <map>
#include <thread>
#include <utility>

#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "util/profile_tag.h"

// Sanitizer builds cannot host a SIGPROF sampler: the handler interrupts
// instrumented code at arbitrary points, and backtrace() re-entering the
// sanitizer runtime deadlocks or reports phantom races. The profiler stays
// compiled (the API must exist) but SupportedOnThisBuild() is false.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    defined(SURVEYOR_SANITIZE_BUILD)
#define SURVEYOR_PROFILER_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SURVEYOR_PROFILER_DISABLED 1
#endif
#endif

#if defined(__linux__) && !defined(SURVEYOR_PROFILER_DISABLED)
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#define SURVEYOR_PROFILER_SUPPORTED 1
#endif

namespace surveyor {
namespace obs {

namespace {

std::string_view StageLabel(int32_t stage) {
  if (stage < static_cast<int32_t>(PipelineStage::kStarting) ||
      stage > static_cast<int32_t>(PipelineStage::kDone)) {
    return "none";
  }
  return PipelineStageName(static_cast<PipelineStage>(stage));
}

/// Frame names feed the folded grammar "f1;f2;... count": ';' would split
/// a frame, '\n' a line, and a trailing space would shift the count.
std::string SanitizeFrame(std::string name) {
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
    if (c == ' ') c = '_';
  }
  if (name.empty()) name = "??";
  return name;
}

}  // namespace

ProfileResult AggregateSamples(const std::vector<StackSample>& samples,
                               int64_t dropped, double duration_seconds,
                               double frequency_hz,
                               const SymbolizeFn& symbolize) {
  // std::map keys keep both tables in a deterministic order independent of
  // sample arrival (the determinism contract in the header).
  std::map<std::string, int64_t> folded;
  std::map<std::pair<std::string, std::string>, int64_t> buckets;
  // Each distinct pc symbolizes once; a 97 Hz * 30 s window repeats the
  // same hot frames thousands of times.
  std::map<const void*, std::string> names;

  for (const StackSample& sample : samples) {
    const std::string stage(StageLabel(sample.stage));
    const std::string tag = SanitizeFrame(
        sample.tag != nullptr ? std::string(sample.tag) : "untagged");
    std::string stack = stage + ";" + tag;
    // backtrace() stores leaf-first; folded stacks read root-first.
    const int depth = std::min<int>(sample.depth, StackSample::kMaxFrames);
    for (int i = depth - 1; i >= 0; --i) {
      auto [it, inserted] = names.emplace(sample.frames[i], std::string());
      if (inserted) it->second = SanitizeFrame(symbolize(sample.frames[i]));
      stack += ";" + it->second;
    }
    ++folded[stack];
    ++buckets[{stage, tag}];
  }

  ProfileResult result;
  result.samples = static_cast<int64_t>(samples.size());
  result.dropped = dropped;
  result.duration_seconds = duration_seconds;
  result.frequency_hz = frequency_hz;
  result.folded.reserve(folded.size());
  for (const auto& [stack, count] : folded) {
    result.folded.push_back({stack, count});
  }
  const double total = result.samples > 0 ? result.samples : 1.0;
  result.stages.reserve(buckets.size());
  for (const auto& [key, count] : buckets) {
    result.stages.push_back({key.first, key.second, count, count / total});
  }
  std::sort(result.stages.begin(), result.stages.end(),
            [](const StageAttribution& a, const StageAttribution& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              if (a.stage != b.stage) return a.stage < b.stage;
              return a.tag < b.tag;
            });
  return result;
}

std::string ProfileResult::ToFolded() const {
  std::string out;
  for (const FoldedStack& entry : folded) {
    out += entry.stack + " " + std::to_string(entry.count) + "\n";
  }
  return out;
}

std::string ProfileResult::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  AppendBuildInfoJson(writer);
  writer.Key("samples")
      .Value(samples)
      .Key("dropped")
      .Value(dropped)
      .Key("duration_seconds")
      .Value(duration_seconds)
      .Key("frequency_hz")
      .Value(frequency_hz);
  writer.Key("stage_attribution").BeginArray();
  for (const StageAttribution& entry : stages) {
    writer.BeginObject()
        .Key("stage")
        .Value(entry.stage)
        .Key("tag")
        .Value(entry.tag)
        .Key("samples")
        .Value(entry.samples)
        .Key("fraction")
        .Value(entry.fraction)
        .EndObject();
  }
  writer.EndArray();
  writer.Key("folded").BeginArray();
  for (const FoldedStack& entry : folded) {
    writer.BeginObject()
        .Key("stack")
        .Value(entry.stack)
        .Key("count")
        .Value(entry.count)
        .EndObject();
  }
  writer.EndArray().EndObject();
  return writer.str();
}

Profiler& Profiler::Global() {
  static Profiler* instance = new Profiler();
  return *instance;
}

#ifdef SURVEYOR_PROFILER_SUPPORTED

namespace {

/// The handler's entire view of the world. Published with release stores
/// in Start(), nulled in Stop(); the handler re-reads both on every
/// delivery, so a post-Stop straggler signal is a no-op.
std::atomic<SampleRing*> g_active_ring{nullptr};
std::atomic<const StageTracker*> g_active_stage{nullptr};

/// Async-signal-safe by construction: backtrace() into a stack buffer
/// (warmed up in Start — the first call may dlopen libgcc_s, which is not
/// handler-safe), two TLS/atomic loads for the attribution context, one
/// lock-free ring append. No allocation, no locks, errno preserved.
void SigprofHandler(int /*signo*/) {
  const int saved_errno = errno;
  SampleRing* ring = g_active_ring.load(std::memory_order_acquire);
  if (ring != nullptr) {
    // Capture two extra frames so dropping this handler and the kernel's
    // signal trampoline still leaves kMaxFrames of application stack.
    void* frames[StackSample::kMaxFrames + 2];
    const int captured = backtrace(frames, StackSample::kMaxFrames + 2);
    const int skip = captured > 2 ? 2 : 0;
    StackSample sample;
    sample.depth = captured - skip;
    for (int i = 0; i < sample.depth; ++i) {
      sample.frames[i] = frames[i + skip];
    }
    sample.tag = CurrentProfileTag();
    const StageTracker* stage = g_active_stage.load(std::memory_order_acquire);
    sample.stage =
        stage != nullptr ? static_cast<int32_t>(stage->stage_relaxed()) : -1;
    ring->TryAppend(sample);
  }
  errno = saved_errno;
}

/// Installs the SIGPROF handler once and leaves it installed for the
/// process lifetime: restoring the default action would let a straggler
/// signal (delivered between timer disarm and sigaction) terminate the
/// process — SIGPROF's default disposition is Term.
void EnsureHandlerInstalled() {
  static const bool installed = [] {
    struct sigaction action {};
    action.sa_handler = &SigprofHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    return sigaction(SIGPROF, &action, nullptr) == 0;
  }();
  (void)installed;
}

Status SetProfTimer(double frequency_hz) {
  itimerval timer{};
  if (frequency_hz > 0) {
    const long micros = std::max(1L, static_cast<long>(1e6 / frequency_hz));
    timer.it_interval.tv_sec = micros / 1000000;
    timer.it_interval.tv_usec = micros % 1000000;
    timer.it_value = timer.it_interval;
  }
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }
  return Status::OK();
}

}  // namespace

bool Profiler::SupportedOnThisBuild() { return true; }

Status Profiler::Start(const ProfilerOptions& options) {
  if (options.frequency_hz < 1.0 || options.frequency_hz > 1000.0) {
    return Status::InvalidArgument("profiler frequency_hz must be in [1, 1000]");
  }
  if (options.max_samples == 0) {
    return Status::InvalidArgument("profiler max_samples must be positive");
  }
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("a profile is already running");
  }
  options_ = options;
  ring_ = std::make_unique<SampleRing>(options.max_samples);
  // Warm up backtrace() outside the handler: its first call may load
  // libgcc_s (malloc + dlopen), which must never happen mid-signal.
  void* warmup[4];
  backtrace(warmup, 4);
  EnsureHandlerInstalled();
  g_active_stage.store(options.stage_tracker, std::memory_order_release);
  g_active_ring.store(ring_.get(), std::memory_order_release);
  window_start_ = std::chrono::steady_clock::now();
  const Status timer = SetProfTimer(options.frequency_hz);
  if (!timer.ok()) {
    g_active_ring.store(nullptr, std::memory_order_release);
    g_active_stage.store(nullptr, std::memory_order_release);
    running_.store(false, std::memory_order_release);
    return timer;
  }
  return Status::OK();
}

StatusOr<ProfileResult> Profiler::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("no profile is running");
  }
  (void)SetProfTimer(0);
  g_active_ring.store(nullptr, std::memory_order_release);
  g_active_stage.store(nullptr, std::memory_order_release);
  const double duration = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - window_start_)
                              .count();
  // A handler dispatched just before the null store may still be copying
  // into the ring; its TryAppend is lock-free and bounded, so a tiny grace
  // period guarantees the Snapshot below sees a quiescent ring.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ProfileResult result =
      AggregateSamples(ring_->Snapshot(), ring_->dropped(), duration,
                       options_.frequency_hz, SymbolizePc);
  if (options_.metrics != nullptr) {
    MetricRegistry& metrics = *options_.metrics;
    metrics.SetHelp("surveyor_profile_samples_total",
                    "CPU samples captured by completed profile windows");
    metrics.GetCounter("surveyor_profile_samples_total")
        ->Increment(result.samples);
    metrics.SetHelp("surveyor_profile_samples_dropped_total",
                    "CPU samples dropped because the sample ring was full");
    metrics.GetCounter("surveyor_profile_samples_dropped_total")
        ->Increment(result.dropped);
  }
  ring_.reset();
  running_.store(false, std::memory_order_release);
  return result;
}

StatusOr<ProfileResult> Profiler::ProfileFor(double seconds,
                                             const ProfilerOptions& options) {
  Status started = Start(options);
  if (!started.ok()) return started;
  // Deadline loop: our own SIGPROF interrupts sleeps, and sleep_for may
  // legally return early on spurious wakeups — keep waiting until the
  // window really elapsed.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_until(deadline);
  }
  return Stop();
}

int64_t Profiler::SamplesSoFar() const {
  if (!running_.load(std::memory_order_acquire)) return 0;
  SampleRing* ring = g_active_ring.load(std::memory_order_acquire);
  return ring != nullptr ? ring->attempts() : 0;
}

#else  // !SURVEYOR_PROFILER_SUPPORTED

bool Profiler::SupportedOnThisBuild() { return false; }

Status Profiler::Start(const ProfilerOptions&) {
  return Status::Unimplemented(
      "profiler unavailable: sanitizer build or platform without "
      "SIGPROF/backtrace");
}

StatusOr<ProfileResult> Profiler::Stop() {
  return Status::FailedPrecondition("no profile is running");
}

StatusOr<ProfileResult> Profiler::ProfileFor(double, const ProfilerOptions&) {
  return Status::Unimplemented(
      "profiler unavailable: sanitizer build or platform without "
      "SIGPROF/backtrace");
}

int64_t Profiler::SamplesSoFar() const { return 0; }

#endif  // SURVEYOR_PROFILER_SUPPORTED

}  // namespace obs
}  // namespace surveyor
