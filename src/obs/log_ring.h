#ifndef SURVEYOR_OBS_LOG_RING_H_
#define SURVEYOR_OBS_LOG_RING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

/// Bounded in-memory buffer of recent log lines plus per-severity message
/// counters. The admin server's /logz endpoint serves the buffered lines
/// and /metrics exposes the counters
/// (surveyor_log_messages_total{severity="..."}), so an operator can see
/// what a multi-minute run is saying without tailing stderr. Appends are
/// mutex-protected (logging is never a hot loop); the buffer wraps,
/// keeping the newest `capacity` lines — a web-scale run must not grow
/// memory without bound.
class LogRing {
 public:
  /// The process-wide ring that InstallGlobalTee routes SURVEYOR_LOG into.
  static LogRing& Global();

  /// One buffered line. `sequence` increases monotonically from 0 across
  /// the ring's lifetime, so consumers can detect dropped lines.
  struct Line {
    int64_t sequence = 0;
    LogSeverity severity = LogSeverity::kInfo;
    std::string text;
  };

  explicit LogRing(size_t capacity = kDefaultCapacity);
  LogRing(const LogRing&) = delete;
  LogRing& operator=(const LogRing&) = delete;

  /// Appends one line (thread-safe), overwriting the oldest when full.
  /// O(1): the ring overwrites in place and reuses the evicted line's
  /// string capacity, so steady-state appends do not allocate.
  void Append(LogSeverity severity, std::string_view line)
      SURVEYOR_EXCLUDES(mutex_);

  /// The buffered lines, oldest first.
  std::vector<Line> Snapshot() const SURVEYOR_EXCLUDES(mutex_);

  /// Total messages appended at `severity` since construction/Clear —
  /// counts every message, including lines the ring has since evicted.
  int64_t MessageCount(LogSeverity severity) const;

  /// Total messages appended across all severities.
  int64_t TotalMessages() const;

  /// Changes the capacity (>= 1), keeping the newest lines.
  void SetCapacity(size_t capacity) SURVEYOR_EXCLUDES(mutex_);

  /// Drops all lines and resets the counters and sequence numbers.
  void Clear() SURVEYOR_EXCLUDES(mutex_);

  /// Appends Prometheus exposition for the per-severity counters:
  ///   surveyor_log_messages_total{severity="info"} 3 ...
  void AppendPrometheusText(std::string* out) const;

  /// Routes every SURVEYOR_LOG message in the process into Global()
  /// (idempotent). Stderr behavior is unchanged; the ring sees messages
  /// below the stderr min-severity threshold too.
  static void InstallGlobalTee();

  /// Removes the tee installed by InstallGlobalTee.
  static void UninstallGlobalTee();

  static constexpr size_t kDefaultCapacity = 256;

 private:
  mutable Mutex mutex_;
  size_t capacity_ SURVEYOR_GUARDED_BY(mutex_);
  int64_t next_sequence_ SURVEYOR_GUARDED_BY(mutex_) = 0;
  /// Ring of buffered lines; once full, `next_slot_` is the oldest entry
  /// and is overwritten next. Snapshot() restores sequence order.
  std::vector<Line> lines_ SURVEYOR_GUARDED_BY(mutex_);
  size_t next_slot_ SURVEYOR_GUARDED_BY(mutex_) = 0;
  /// Atomic, not guarded: MessageCount is called from /metrics scrapes
  /// that must not contend with the append path.
  std::array<std::atomic<int64_t>, 4> counts_{};
};

/// Lower-case severity label for metric labels and /logz ("info",
/// "warning", "error", "fatal").
std::string_view LogSeverityLabel(LogSeverity severity);

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_LOG_RING_H_
