#ifndef SURVEYOR_OBS_STAGE_H_
#define SURVEYOR_OBS_STAGE_H_

#include <atomic>
#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

/// Readiness state machine of a mining process, advanced by
/// SurveyorPipeline::Run* and served by the admin server's /readyz:
/// starting → extracting → fitting → serving/done. A scraper (or a load
/// balancer, once the opinion store serves traffic) treats serving/done as
/// ready and everything earlier as warming up.
enum class PipelineStage {
  kStarting = 0,
  kExtracting,
  kFitting,
  kServing,
  kDone,
};

/// Lower-case stage name ("starting", "extracting", ...).
std::string_view PipelineStageName(PipelineStage stage);

/// Thread-safe holder of the current PipelineStage plus per-stage wall
/// time, shared between the pipeline (writer) and the admin server
/// (reader). Stages may be revisited (e.g. a second Run on the same
/// tracker); seconds accumulate per stage name.
class StageTracker {
 public:
  StageTracker();
  StageTracker(const StageTracker&) = delete;
  StageTracker& operator=(const StageTracker&) = delete;

  PipelineStage stage() const SURVEYOR_EXCLUDES(mutex_);

  /// Lock-free mirror of stage() for readers that cannot take mutex_ —
  /// specifically the profiler's SIGPROF handler (a mutex in a signal
  /// handler deadlocks if the interrupted thread holds it). Relaxed: a
  /// sample landing one stage transition early or late is noise at 97 Hz.
  PipelineStage stage_relaxed() const {
    return static_cast<PipelineStage>(
        stage_atomic_.load(std::memory_order_relaxed));
  }

  /// Enters `stage`, closing the time account of the previous one.
  void SetStage(PipelineStage stage) SURVEYOR_EXCLUDES(mutex_);

  /// True once the process finished warming up (kServing or kDone).
  bool ready() const SURVEYOR_EXCLUDES(mutex_);

  /// Marks the process degraded (or clears the mark): it is serving, but
  /// some documents were quarantined or some pairs fell back to the SMV
  /// baseline (DESIGN.md §9). Degraded is orthogonal to the stage — a
  /// degraded process still reports ready; /healthz answers 200 with body
  /// "degraded" so probes keep the process in rotation while dashboards
  /// see the flag. Cleared by the pipeline at the start of every run.
  void SetDegraded(bool degraded) SURVEYOR_EXCLUDES(mutex_);

  /// Whether the last (or current) run degraded.
  bool degraded() const SURVEYOR_EXCLUDES(mutex_);

  /// Seconds since the current stage was entered.
  double SecondsInStage() const SURVEYOR_EXCLUDES(mutex_);

  /// Seconds since the tracker was constructed.
  double UptimeSeconds() const SURVEYOR_EXCLUDES(mutex_);

  /// Accumulated seconds per stage in first-entered order, the current
  /// stage counted up to now.
  std::vector<std::pair<std::string, double>> StageSeconds() const
      SURVEYOR_EXCLUDES(mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  mutable Mutex mutex_;
  PipelineStage stage_ SURVEYOR_GUARDED_BY(mutex_) = PipelineStage::kStarting;
  /// Async-signal-safe copy of stage_, updated inside SetStage's critical
  /// section; the only member the profiler's signal handler may read.
  std::atomic<int> stage_atomic_{static_cast<int>(PipelineStage::kStarting)};
  bool degraded_ SURVEYOR_GUARDED_BY(mutex_) = false;
  /// Construction time; immutable afterwards.
  Clock::time_point start_;
  Clock::time_point stage_start_ SURVEYOR_GUARDED_BY(mutex_);
  /// (stage name, accumulated seconds) for every stage entered so far, in
  /// first-entered order; the current stage's entry excludes the open
  /// interval.
  std::vector<std::pair<std::string, double>> accumulated_
      SURVEYOR_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_STAGE_H_
