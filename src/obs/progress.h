#ifndef SURVEYOR_OBS_PROGRESS_H_
#define SURVEYOR_OBS_PROGRESS_H_

#include <condition_variable>
#include <functional>
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace surveyor {
namespace obs {

/// Invokes a callback at a fixed interval from a background thread, for
/// periodic progress lines during long streaming runs (docs/sec,
/// statements/sec, queue depth). The callback runs only on the reporter
/// thread and never after the destructor returns; destruction does not
/// wait for the interval to elapse.
class ProgressReporter {
 public:
  /// Starts reporting every `interval_seconds` (must be > 0). The first
  /// call happens one interval after construction, so runs shorter than
  /// the interval stay silent.
  ProgressReporter(double interval_seconds, std::function<void()> report);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

 private:
  void Loop(double interval_seconds, const std::function<void()>& report)
      SURVEYOR_EXCLUDES(mutex_);

  Mutex mutex_;
  std::condition_variable_any stop_cv_;
  bool stopping_ SURVEYOR_GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_PROGRESS_H_
