#ifndef SURVEYOR_OBS_BUILD_INFO_H_
#define SURVEYOR_OBS_BUILD_INFO_H_

#include <string_view>

namespace surveyor {
namespace obs {

class JsonWriter;

/// Identity of the running binary, baked in at configure time (CMake
/// passes the values as compile definitions on build_info.cc). Committed
/// artifacts — BENCH_*.json, profiles — embed this block so a number is
/// always attributable to the binary that produced it (ISSUE 7).
struct BuildInfo {
  /// `git rev-parse HEAD` at configure time, "unknown" outside a checkout.
  /// Configure-time, not commit-time: a dirty tree still reports the last
  /// commit — treat it as "built near", not "built exactly at".
  std::string_view git_sha;
  /// Compiler id + version, e.g. "GNU 12.2.0".
  std::string_view compiler;
  /// CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo".
  std::string_view build_type;
  /// SURVEYOR_SANITIZE value, "" for an uninstrumented build.
  std::string_view sanitizer;
};

/// The build info of this binary.
const BuildInfo& GetBuildInfo();

/// Appends `"build_info": {...}` (key plus object) to an open JSON object.
void AppendBuildInfoJson(JsonWriter& writer);

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_BUILD_INFO_H_
