#ifndef SURVEYOR_OBS_PROFILER_H_
#define SURVEYOR_OBS_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage.h"
#include "util/sample_ring.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/symbolize.h"

namespace surveyor {
namespace obs {

/// Configuration of one profile window.
struct ProfilerOptions {
  /// Sampling frequency. 97 Hz (prime) by default so the timer cannot
  /// phase-lock with periodic work; clamp-checked to [1, 1000].
  double frequency_hz = 97.0;
  /// Sample-ring capacity; appends beyond it are counted as dropped.
  size_t max_samples = 1 << 16;
  /// When set, every sample records the pipeline stage active at capture
  /// time (via StageTracker::stage_relaxed(), the lock-free mirror).
  const StageTracker* stage_tracker = nullptr;
  /// When set, Stop() folds surveyor_profile_samples_total /
  /// surveyor_profile_samples_dropped_total into this registry.
  MetricRegistry* metrics = nullptr;
};

/// One aggregated stack in flamegraph.pl "folded" form:
/// "stage;tag;outermost;...;leaf" with the sample count.
struct FoldedStack {
  std::string stack;
  int64_t count = 0;
};

/// Samples bucketed by (pipeline stage, innermost ProfileScope tag) — the
/// table ROADMAP item 1 needs: how much CPU does extraction really take,
/// and which phase inside it.
struct StageAttribution {
  std::string stage;  ///< PipelineStageName at sample time, "none" untracked.
  std::string tag;    ///< Innermost SURVEYOR_PROFILE_SCOPE, "untagged".
  int64_t samples = 0;
  double fraction = 0.0;  ///< samples / total samples of the profile.
};

/// An aggregated profile. Both renderings are deterministic functions of
/// the samples: folded stacks sort lexicographically, the stage table by
/// descending sample count (ties by stage then tag) — same samples, same
/// symbolizer, byte-identical output.
struct ProfileResult {
  int64_t samples = 0;
  int64_t dropped = 0;
  double duration_seconds = 0.0;
  double frequency_hz = 0.0;
  std::vector<FoldedStack> folded;
  std::vector<StageAttribution> stages;

  /// flamegraph.pl input: one "stack count\n" line per folded stack.
  std::string ToFolded() const;

  /// JSON with build info, totals, the stage table and the folded stacks.
  std::string ToJson() const;
};

/// Pure sample aggregation, exposed for determinism tests (inject a fake
/// symbolizer; real addresses differ run to run). Frame names are
/// sanitized (';' and newlines replaced) so they cannot corrupt the folded
/// grammar; frames are emitted root-first as flamegraph.pl expects.
ProfileResult AggregateSamples(const std::vector<StackSample>& samples,
                               int64_t dropped, double duration_seconds,
                               double frequency_hz,
                               const SymbolizeFn& symbolize);

/// Timer-driven sampling CPU profiler (DESIGN.md §12). A profile window
/// arms ITIMER_PROF at frequency_hz; the kernel delivers SIGPROF on a
/// thread that is actually burning CPU, and the handler — async-signal-safe
/// by construction — captures a backtrace, the thread's ProfileScope tag
/// and the pipeline stage into a preallocated SampleRing. Symbolization
/// and aggregation happen in Stop(), outside any handler.
///
/// Always compiled, disarmed by default: when no profile is running the
/// only cost the hot path pays is the ProfileScope TLS writes (<1%,
/// proven in bench/micro_benchmarks.cc — same posture as util/fault).
/// One profile at a time, process-wide: Start() while running returns
/// FailedPrecondition (the admin server maps it to 409). Under sanitizer
/// builds and non-Linux platforms Start() returns Unimplemented — signal
/// handlers interrupting instrumented code are not supportable.
class Profiler {
 public:
  /// The process-wide profiler (ITIMER_PROF is per-process state, so a
  /// second instance could not run anyway).
  static Profiler& Global();

  /// False under sanitizers or without SIGPROF/backtrace support; Start()
  /// then fails with Unimplemented.
  static bool SupportedOnThisBuild();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms the sampler. Errors: Unimplemented (unsupported build),
  /// FailedPrecondition (a profile is already running), InvalidArgument
  /// (frequency/capacity out of range).
  Status Start(const ProfilerOptions& options = {});

  /// Disarms the sampler and aggregates the window's samples. The SIGPROF
  /// handler stays installed (a pending signal after disarm must hit a
  /// null-ring no-op, not the default action, which terminates). Updates
  /// options.metrics counters when a registry was attached.
  StatusOr<ProfileResult> Stop();

  /// Start + CPU-time wait + Stop. The wait loops on a steady-clock
  /// deadline, so EINTR wake-ups from our own SIGPROF cannot shorten it.
  StatusOr<ProfileResult> ProfileFor(double seconds,
                                     const ProfilerOptions& options = {});

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Samples captured so far in the running window (attempts, including
  /// drops); 0 when idle. Lets tests and callers wait for real data
  /// instead of guessing at timer latency.
  int64_t SamplesSoFar() const;

 private:
  Profiler() = default;

  std::atomic<bool> running_{false};
  std::unique_ptr<SampleRing> ring_;
  ProfilerOptions options_;
  std::chrono::steady_clock::time_point window_start_;
};

}  // namespace obs
}  // namespace surveyor

#endif  // SURVEYOR_OBS_PROFILER_H_
