#include "obs/access_log.h"

#include <algorithm>

#include "obs/metrics.h"

namespace surveyor {
namespace obs {

AccessLog::AccessLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  MutexLock lock(mutex_);
  entries_.reserve(std::min<size_t>(capacity_, kDefaultCapacity));
}

void AccessLog::Append(AccessLogEntry entry) {
  MutexLock lock(mutex_);
  entry.sequence = next_sequence_++;
  const bool error = entry.status >= 400;
  // Counter-map growth is bounded: beyond kMaxEndpoints distinct
  // endpoints, new ones aggregate under "other" (a 404 scan must not grow
  // memory without bound).
  std::string key = entry.endpoint.empty() ? "other" : entry.endpoint;
  auto it = by_endpoint_.find(key);
  if (it == by_endpoint_.end() && by_endpoint_.size() >= kMaxEndpoints) {
    key = "other";
    it = by_endpoint_.find(key);
  }
  if (it == by_endpoint_.end()) {
    it = by_endpoint_.emplace(std::move(key), Counts{}).first;
  }
  it->second.requests += 1;
  if (error) it->second.errors += 1;
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return;
  }
  entries_[next_slot_] = std::move(entry);
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<AccessLogEntry> AccessLog::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<AccessLogEntry> entries;
  entries.reserve(entries_.size());
  // Oldest first: once the ring has wrapped, next_slot_ is the oldest.
  const size_t n = entries_.size();
  const size_t oldest = n < capacity_ ? 0 : next_slot_;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(entries_[(oldest + i) % n]);
  }
  return entries;
}

std::vector<AccessLogEntry> AccessLog::SlowestN(size_t n) const {
  std::vector<AccessLogEntry> entries = Snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const AccessLogEntry& a, const AccessLogEntry& b) {
              if (a.latency_seconds != b.latency_seconds) {
                return a.latency_seconds > b.latency_seconds;
              }
              return a.sequence > b.sequence;
            });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

int64_t AccessLog::total_requests() const {
  MutexLock lock(mutex_);
  return next_sequence_;
}

std::vector<AccessLog::EndpointCounts> AccessLog::ByEndpoint() const {
  MutexLock lock(mutex_);
  std::vector<EndpointCounts> counts;
  counts.reserve(by_endpoint_.size());
  for (const auto& [endpoint, c] : by_endpoint_) {
    counts.push_back({endpoint, c.requests, c.errors});
  }
  return counts;
}

void AccessLog::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  next_slot_ = 0;
  next_sequence_ = 0;
  by_endpoint_.clear();
}

void AccessLog::AppendPrometheusText(std::string* out) const {
  const std::vector<EndpointCounts> counts = ByEndpoint();
  if (counts.empty()) return;
  *out +=
      "# HELP surveyor_admin_requests_total Admin-plane requests handled, "
      "by endpoint.\n";
  *out += "# TYPE surveyor_admin_requests_total counter\n";
  for (const EndpointCounts& c : counts) {
    *out += "surveyor_admin_requests_total{endpoint=\"" +
            EscapeLabelValue(c.endpoint) + "\"} " +
            std::to_string(c.requests) + "\n";
  }
  *out +=
      "# HELP surveyor_admin_request_errors_total Admin-plane responses "
      "with status >= 400, by endpoint.\n";
  *out += "# TYPE surveyor_admin_request_errors_total counter\n";
  for (const EndpointCounts& c : counts) {
    *out += "surveyor_admin_request_errors_total{endpoint=\"" +
            EscapeLabelValue(c.endpoint) + "\"} " +
            std::to_string(c.errors) + "\n";
  }
}

}  // namespace obs
}  // namespace surveyor
