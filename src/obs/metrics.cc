#include "obs/metrics.h"

#include <algorithm>

#include "obs/json_writer.h"
#include "obs/request_trace.h"
#include "util/logging.h"

namespace surveyor {
namespace obs {

uint32_t CurrentThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

Histogram::Histogram(HistogramOptions options) {
  SURVEYOR_CHECK_GT(options.num_finite_buckets, 0);
  SURVEYOR_CHECK_GT(options.growth, 1.0);
  SURVEYOR_CHECK_GT(options.first_bound, 0.0);
  bounds_.reserve(static_cast<size_t>(options.num_finite_buckets));
  double bound = options.first_bound;
  for (int i = 0; i < options.num_finite_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
  buckets_ =
      std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t b = 0; b <= bounds_.size(); ++b) buckets_[b] = 0;
  exemplars_ = std::make_unique<ExemplarSlot[]>(bounds_.size() + 1);
}

void Histogram::Record(double value, uint64_t exemplar_trace_id) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.Add(value);
  if (exemplar_trace_id == 0) return;
  // Keep the max-valued exemplar per bucket. Best effort: value and trace
  // id are separate atomics, so a racing pair can briefly mismatch — fine
  // for a debugging pointer, and it avoids a lock on the record path.
  ExemplarSlot& slot = exemplars_[bucket];
  double current = slot.value.load(std::memory_order_relaxed);
  while (value > current ||
         slot.trace_id.load(std::memory_order_relaxed) == 0) {
    if (slot.value.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
      slot.trace_id.store(exemplar_trace_id, std::memory_order_relaxed);
      break;
    }
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1);
  for (size_t b = 0; b < counts.size(); ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<Histogram::BucketExemplar> Histogram::Exemplars() const {
  std::vector<BucketExemplar> exemplars(bounds_.size() + 1);
  for (size_t b = 0; b < exemplars.size(); ++b) {
    exemplars[b].trace_id =
        exemplars_[b].trace_id.load(std::memory_order_relaxed);
    exemplars[b].value = exemplars_[b].value.load(std::memory_order_relaxed);
  }
  return exemplars;
}

std::string_view MetricKindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string SanitizeMetricName(std::string_view name) {
  std::string sanitized;
  sanitized.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (i == 0 && digit) sanitized.push_back('_');
    sanitized.push_back(alpha || digit ? c : '_');
  }
  if (sanitized.empty()) sanitized = "_";
  return sanitized;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped.push_back(c);
    }
  }
  return escaped;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        HistogramOptions options) {
  MutexLock lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

void MetricRegistry::SetHelp(const std::string& name,
                             const std::string& help) {
  MutexLock lock(mutex_);
  help_[name] = help;
}

std::string MetricRegistry::HelpForLocked(const std::string& name) const {
  const auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::vector<MetricSnapshot> snapshots;
  {
    MutexLock lock(mutex_);
    snapshots.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, counter] : counters_) {
      MetricSnapshot snapshot;
      snapshot.name = name;
      snapshot.kind = MetricSnapshot::Kind::kCounter;
      snapshot.value = static_cast<double>(counter->Value());
      snapshot.help = HelpForLocked(name);
      snapshots.push_back(std::move(snapshot));
    }
    for (const auto& [name, gauge] : gauges_) {
      MetricSnapshot snapshot;
      snapshot.name = name;
      snapshot.kind = MetricSnapshot::Kind::kGauge;
      snapshot.value = gauge->Value();
      snapshot.help = HelpForLocked(name);
      snapshots.push_back(std::move(snapshot));
    }
    for (const auto& [name, histogram] : histograms_) {
      MetricSnapshot snapshot;
      snapshot.name = name;
      snapshot.kind = MetricSnapshot::Kind::kHistogram;
      snapshot.value = histogram->Sum();
      snapshot.count = histogram->Count();
      snapshot.bucket_bounds = histogram->bucket_bounds();
      snapshot.bucket_counts = histogram->BucketCounts();
      snapshot.exemplars = histogram->Exemplars();
      snapshot.help = HelpForLocked(name);
      snapshots.push_back(std::move(snapshot));
    }
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snapshots;
}

namespace {

/// Escapes help text for a # HELP line: only backslash and newline are
/// special there (exposition-format rules; quotes stay literal).
std::string EscapeHelpText(std::string_view help) {
  std::string escaped;
  escaped.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      escaped += "\\\\";
    } else if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped.push_back(c);
    }
  }
  return escaped;
}

/// OpenMetrics-style exemplar suffix for a bucket sample line:
///   " # {trace_id=\"00ab...\"} 0.0042". Empty when the bucket has none.
std::string ExemplarSuffix(const MetricSnapshot& metric, size_t bucket) {
  if (bucket >= metric.exemplars.size()) return std::string();
  const Histogram::BucketExemplar& exemplar = metric.exemplars[bucket];
  if (exemplar.trace_id == 0) return std::string();
  return " # {trace_id=\"" + TraceIdHex(exemplar.trace_id) + "\"} " +
         JsonNumber(exemplar.value);
}

}  // namespace

std::string MetricRegistry::ToPrometheusText() const {
  std::string out;
  for (const MetricSnapshot& metric : Snapshot()) {
    const std::string name = SanitizeMetricName(metric.name);
    if (!metric.help.empty()) {
      out += "# HELP " + name + " " + EscapeHelpText(metric.help) + "\n";
    }
    out += "# TYPE " + name + " " +
           std::string(MetricKindName(metric.kind)) + "\n";
    if (metric.kind != MetricSnapshot::Kind::kHistogram) {
      out += name + " " + JsonNumber(metric.value) + "\n";
      continue;
    }
    // Prometheus histograms are cumulative over the bucket bounds, with a
    // trailing +Inf sample equal to the total observation count.
    int64_t cumulative = 0;
    for (size_t b = 0; b < metric.bucket_bounds.size(); ++b) {
      cumulative += metric.bucket_counts[b];
      out += name + "_bucket{le=\"" +
             EscapeLabelValue(JsonNumber(metric.bucket_bounds[b])) + "\"} " +
             std::to_string(cumulative) + ExemplarSuffix(metric, b) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(metric.count) +
           ExemplarSuffix(metric, metric.bucket_bounds.size()) + "\n";
    out += name + "_sum " + JsonNumber(metric.value) + "\n";
    out += name + "_count " + std::to_string(metric.count) + "\n";
  }
  return out;
}

namespace {

void WriteMetricValue(const MetricSnapshot& metric, JsonWriter& writer) {
  if (metric.kind != MetricSnapshot::Kind::kHistogram) {
    writer.Value(metric.value);
    return;
  }
  writer.BeginObject()
      .Key("count")
      .Value(metric.count)
      .Key("sum")
      .Value(metric.value)
      .Key("bounds")
      .BeginArray();
  for (const double bound : metric.bucket_bounds) writer.Value(bound);
  writer.EndArray().Key("buckets").BeginArray();
  for (const int64_t count : metric.bucket_counts) writer.Value(count);
  writer.EndArray().EndObject();
}

}  // namespace

std::string MetricRegistry::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  for (const MetricSnapshot& metric : Snapshot()) {
    writer.Key(metric.name);
    WriteMetricValue(metric, writer);
  }
  writer.EndObject();
  return writer.str();
}

}  // namespace obs
}  // namespace surveyor
