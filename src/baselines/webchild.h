#ifndef SURVEYOR_BASELINES_WEBCHILD_H_
#define SURVEYOR_BASELINES_WEBCHILD_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/classifier.h"
#include "extraction/evidence.h"

namespace surveyor {

/// Options for the WebChild-style baseline.
struct WebChildOptions {
  /// Minimum co-occurrence count for an (entity, adjective) association to
  /// enter the harvested knowledge base (WebChild keeps statistically
  /// significant associations, not single sightings).
  int64_t min_pair_occurrences = 1;
  /// Minimum total mentions for an entity to be covered by the harvested
  /// knowledge base at all; entities below this are "not contained in the
  /// knowledge base" and yield no output.
  int64_t min_entity_occurrences = 5;
};

/// WebChild-style commonsense tagger (paper Section 7.4, [22]): harvests
/// entity-adjective associations from the corpus *without* negation
/// detection and *without* any subjectivity model. Following the paper's
/// comparison protocol, the absence of an association for a covered entity
/// is treated as a negative assertion, and the only coverage loss is an
/// entity missing from the harvested knowledge base.
class WebChildClassifier : public OpinionClassifier {
 public:
  explicit WebChildClassifier(WebChildOptions options = {});

  /// Harvests associations from extraction output, deliberately ignoring
  /// statement polarity (WebChild has no negation handling). Call once
  /// over the whole corpus before classifying.
  void Harvest(const std::vector<EvidenceStatement>& statements);

  std::string name() const override { return "WebChild"; }
  std::vector<Polarity> Classify(
      const PropertyTypeEvidence& evidence) const override;

  /// Whether the harvested KB contains the entity.
  bool Covers(EntityId entity) const;
  /// Whether the harvested KB asserts the (entity, property) association.
  bool HasAssociation(EntityId entity, const std::string& property) const;

  size_t num_entities() const { return entity_occurrences_.size(); }

 private:
  WebChildOptions options_;
  std::unordered_map<EntityId, int64_t> entity_occurrences_;
  std::unordered_map<EntityId, std::unordered_map<std::string, int64_t>>
      associations_;
};

}  // namespace surveyor

#endif  // SURVEYOR_BASELINES_WEBCHILD_H_
