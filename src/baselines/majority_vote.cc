#include "baselines/majority_vote.h"

#include "util/logging.h"

namespace surveyor {

std::vector<Polarity> MajorityVoteClassifier::Classify(
    const PropertyTypeEvidence& evidence) const {
  std::vector<Polarity> result(evidence.counts.size(), Polarity::kNeutral);
  for (size_t i = 0; i < evidence.counts.size(); ++i) {
    const EvidenceCounts& c = evidence.counts[i];
    if (c.positive > c.negative) {
      result[i] = Polarity::kPositive;
    } else if (c.negative > c.positive) {
      result[i] = Polarity::kNegative;
    }
  }
  return result;
}

ScaledMajorityVoteClassifier::ScaledMajorityVoteClassifier(double scale)
    : scale_(scale) {
  SURVEYOR_CHECK_GT(scale, 0.0);
}

std::vector<Polarity> ScaledMajorityVoteClassifier::Classify(
    const PropertyTypeEvidence& evidence) const {
  std::vector<Polarity> result(evidence.counts.size(), Polarity::kNeutral);
  for (size_t i = 0; i < evidence.counts.size(); ++i) {
    const EvidenceCounts& c = evidence.counts[i];
    const double scaled_negative = scale_ * static_cast<double>(c.negative);
    const double positive = static_cast<double>(c.positive);
    if (positive > scaled_negative) {
      result[i] = Polarity::kPositive;
    } else if (scaled_negative > positive) {
      result[i] = Polarity::kNegative;
    }
  }
  return result;
}

double ScaledMajorityVoteClassifier::ComputeGlobalScale(
    const std::vector<PropertyTypeEvidence>& all_evidence) {
  int64_t positive = 0;
  int64_t negative = 0;
  for (const PropertyTypeEvidence& evidence : all_evidence) {
    for (const EvidenceCounts& c : evidence.counts) {
      positive += c.positive;
      negative += c.negative;
    }
  }
  if (negative == 0 || positive == 0) return 1.0;
  return static_cast<double>(positive) / static_cast<double>(negative);
}

}  // namespace surveyor
