#include "baselines/webchild.h"

namespace surveyor {

WebChildClassifier::WebChildClassifier(WebChildOptions options)
    : options_(options) {}

void WebChildClassifier::Harvest(
    const std::vector<EvidenceStatement>& statements) {
  for (const EvidenceStatement& s : statements) {
    ++entity_occurrences_[s.entity];
    // Polarity is ignored: WebChild counts co-occurrence only, so "X is
    // not cute" still strengthens the (X, cute) association — the false
    // positives the paper observed for "cute animals".
    ++associations_[s.entity][s.property];
  }
}

bool WebChildClassifier::Covers(EntityId entity) const {
  auto it = entity_occurrences_.find(entity);
  return it != entity_occurrences_.end() &&
         it->second >= options_.min_entity_occurrences;
}

bool WebChildClassifier::HasAssociation(EntityId entity,
                                        const std::string& property) const {
  auto it = associations_.find(entity);
  if (it == associations_.end()) return false;
  auto pit = it->second.find(property);
  return pit != it->second.end() &&
         pit->second >= options_.min_pair_occurrences;
}

std::vector<Polarity> WebChildClassifier::Classify(
    const PropertyTypeEvidence& evidence) const {
  std::vector<Polarity> result(evidence.entities.size(), Polarity::kNeutral);
  for (size_t i = 0; i < evidence.entities.size(); ++i) {
    const EntityId entity = evidence.entities[i];
    if (!Covers(entity)) continue;  // not in the harvested KB
    result[i] = HasAssociation(entity, evidence.property)
                    ? Polarity::kPositive
                    : Polarity::kNegative;
  }
  return result;
}

}  // namespace surveyor
