#ifndef SURVEYOR_BASELINES_CLASSIFIER_H_
#define SURVEYOR_BASELINES_CLASSIFIER_H_

#include <string>
#include <vector>

#include "extraction/aggregator.h"
#include "model/opinion.h"

namespace surveyor {

/// Common interface for everything that turns the evidence of one
/// property-type pair into per-entity polarity decisions: the Surveyor
/// model and the three comparison methods of paper Section 7.4
/// (majority vote, scaled majority vote, WebChild).
class OpinionClassifier {
 public:
  virtual ~OpinionClassifier() = default;

  /// Human-readable method name (appears in result tables).
  virtual std::string name() const = 0;

  /// Returns one polarity per entity in `evidence.entities`.
  /// `Polarity::kNeutral` means the method produces no output for the
  /// entity (counts as uncovered in the evaluation).
  virtual std::vector<Polarity> Classify(
      const PropertyTypeEvidence& evidence) const = 0;
};

}  // namespace surveyor

#endif  // SURVEYOR_BASELINES_CLASSIFIER_H_
