#ifndef SURVEYOR_BASELINES_MAJORITY_VOTE_H_
#define SURVEYOR_BASELINES_MAJORITY_VOTE_H_

#include <string>
#include <vector>

#include "baselines/classifier.h"

namespace surveyor {

/// Majority Vote (paper Section 7.4): positive when C+ > C-, negative when
/// C- > C+, no decision when the counters tie (including the common 0/0
/// case — which is why its coverage is poor).
class MajorityVoteClassifier : public OpinionClassifier {
 public:
  MajorityVoteClassifier() = default;

  std::string name() const override { return "Majority Vote"; }
  std::vector<Polarity> Classify(
      const PropertyTypeEvidence& evidence) const override;
};

/// Scaled Majority Vote: multiplies the negative counter by a global
/// positive-to-negative ratio before voting — a coarse, type- and
/// property-independent correction of the polarity bias.
class ScaledMajorityVoteClassifier : public OpinionClassifier {
 public:
  /// `scale` is the average ratio of positive to negative statements over
  /// the whole extraction output (see ComputeGlobalScale).
  explicit ScaledMajorityVoteClassifier(double scale);

  std::string name() const override { return "Scaled Majority Vote"; }
  std::vector<Polarity> Classify(
      const PropertyTypeEvidence& evidence) const override;

  double scale() const { return scale_; }

  /// Computes the global positive/negative statement ratio from the
  /// aggregated evidence of every property-type pair. Returns 1 when no
  /// negative statements exist.
  static double ComputeGlobalScale(
      const std::vector<PropertyTypeEvidence>& all_evidence);

 private:
  double scale_;
};

}  // namespace surveyor

#endif  // SURVEYOR_BASELINES_MAJORITY_VOTE_H_
