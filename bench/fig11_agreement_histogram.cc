// Reproduces Figure 11 (Section 7.3): the number of test cases whose
// inter-worker agreement reaches each threshold, over the 500-case curated
// test set (25 property-type pairs x 20 entities, ties removed).
#include <iostream>

#include "bench/bench_util.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

void Run() {
  bench::PreparedWorld setup = bench::MakePaperSetup();
  Rng rng(103);
  const std::vector<LabeledTestCase> labeled = LabelWithAmt(
      setup.world, SelectCuratedTestCases(setup.world, 20), AmtOptions{20},
      rng);

  double mean_agreement = 0.0;
  int perfect = 0;
  for (const LabeledTestCase& l : labeled) {
    mean_agreement += l.vote.agreement;
    if (l.vote.agreement == 20) ++perfect;
  }
  mean_agreement /= static_cast<double>(labeled.size());

  bench::PrintHeader("Figure 11: test cases with agreement above threshold");
  std::cout << StrFormat(
      "labeled cases: %zu of 500 (ties removed)   mean agreement: %.1f/20   "
      "perfect agreement: %d\n\n",
      labeled.size(), mean_agreement, perfect);
  TextTable table({"# workers in agreement (at least)", "# test cases"});
  for (int threshold = 11; threshold <= 20; ++threshold) {
    int count = 0;
    for (const LabeledTestCase& l : labeled) {
      if (l.vote.agreement >= threshold) ++count;
    }
    table.AddRow({StrFormat("%d", threshold), StrFormat("%d", count)});
  }
  table.Print(std::cout);

  // Section 7.3 also compares agreement across combinations: workers agree
  // more on "dangerous animals" (18/20) than "dangerous sports" (16) or
  // "boring sports" (15) — the observation justifying per-pair parameters.
  bench::PrintHeader("Section 7.3: mean worker agreement per combination");
  TextTable per_pair({"combination", "mean agreement (of 20)"});
  struct Spotlight {
    const char* type;
    const char* property;
  };
  for (const Spotlight& spotlight :
       {Spotlight{"animal", "dangerous"}, Spotlight{"sport", "dangerous"},
        Spotlight{"sport", "boring"}, Spotlight{"animal", "cute"},
        Spotlight{"celebrity", "quiet"}}) {
    const TypeId type =
        setup.world.kb().TypeByName(spotlight.type).value();
    double total = 0.0;
    int count = 0;
    for (const LabeledTestCase& l : labeled) {
      if (l.test_case.type != type ||
          l.test_case.property != spotlight.property) {
        continue;
      }
      total += l.vote.agreement;
      ++count;
    }
    per_pair.AddRow({std::string(spotlight.property) + " " +
                         Lexicon::Pluralize(spotlight.type),
                     count > 0 ? TextTable::Num(total / count, 1) : "-"});
  }
  per_pair.Print(std::cout);
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
