// Reproduces Figure 12 (Section 7.4): precision and coverage of the four
// methods for test cases whose worker agreement is at least each
// threshold.
#include <iostream>

#include "baselines/majority_vote.h"
#include "bench/bench_util.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

void Run() {
  bench::PreparedWorld setup = bench::MakePaperSetup();
  Rng rng(103);
  const std::vector<LabeledTestCase> labeled = LabelWithAmt(
      setup.world, SelectCuratedTestCases(setup.world, 20), AmtOptions{20},
      rng);

  MajorityVoteClassifier mv;
  ScaledMajorityVoteClassifier smv(setup.harness.global_scale());
  SurveyorClassifier surveyor_method;
  const OpinionClassifier* methods[] = {&mv, &smv, &setup.harness.webchild(),
                                        &surveyor_method};

  bench::PrintHeader("Figure 12 (top): precision vs worker agreement");
  TextTable precision_table(
      {"agreement >=", "cases", "Majority", "Scaled Majority", "WebChild",
       "Surveyor"});
  for (int threshold = 11; threshold <= 20; ++threshold) {
    std::vector<std::string> row = {StrFormat("%d", threshold)};
    bool first = true;
    for (const OpinionClassifier* method : methods) {
      const EvalMetrics metrics =
          setup.harness.Evaluate(*method, labeled, threshold);
      if (first) {
        row.push_back(StrFormat("%lld",
                                static_cast<long long>(metrics.total_cases)));
        first = false;
      }
      row.push_back(TextTable::Num(metrics.precision()));
    }
    precision_table.AddRow(std::move(row));
  }
  precision_table.Print(std::cout);

  bench::PrintHeader("Figure 12 (bottom): coverage vs worker agreement");
  TextTable coverage_table({"agreement >=", "Majority", "Scaled Majority",
                            "WebChild", "Surveyor"});
  for (int threshold = 11; threshold <= 20; ++threshold) {
    std::vector<std::string> row = {StrFormat("%d", threshold)};
    for (const OpinionClassifier* method : methods) {
      const EvalMetrics metrics =
          setup.harness.Evaluate(*method, labeled, threshold);
      row.push_back(TextTable::Num(metrics.coverage()));
    }
    coverage_table.AddRow(std::move(row));
  }
  coverage_table.Print(std::cout);

  std::cout << "\nShape check (paper): Surveyor precision rises with\n"
               "agreement (0.77 -> 0.87) while Majority Vote stays flat and\n"
               "low; Surveyor coverage is roughly double the baselines'.\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
