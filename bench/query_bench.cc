// Query-throughput snapshot for the serving layer (BENCH_query.json):
// point-lookup rates through the sharded read-through cache (hot and
// cold), batch lookups, type scans, the in-process handler path, real
// HTTP requests over a loopback socket, request-tracing overhead, and
// multi-threaded scaling. Run via tools/run_bench.sh, which commits the
// refreshed snapshot; the committed numbers are the repo's record that
// cached point lookups sustain >= 100k/s and that default-rate tracing
// keeps at least half the disarmed handler throughput.
//
//   query_bench [out.json]   (default: BENCH_query.json)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define SURVEYOR_BENCH_HAVE_SOCKETS 1
#endif

#include "bench/bench_util.h"
#include "obs/admin_server.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "serving/opinion_index.h"
#include "serving/query_service.h"
#include "serving/snapshot.h"
#include "util/logging.h"
#include "util/rng.h"

namespace surveyor {
namespace {

constexpr int kNumTypes = 8;
constexpr int kNumProperties = 12;
constexpr int kEntitiesPerType = 500;

/// A synthetic snapshot big enough that lookups miss the L1/L2 by
/// default: 4000 entities x 12 properties = 48k opinions.
std::string BuildSnapshot() {
  serving::SnapshotWriter writer;
  writer.set_label("query bench");
  Rng rng(1234);
  for (int t = 0; t < kNumTypes; ++t) {
    const std::string type = "type" + std::to_string(t);
    for (int e = 0; e < kEntitiesPerType; ++e) {
      char name[32];
      std::snprintf(name, sizeof(name), "entity-%d-%04d", t, e);
      for (int p = 0; p < kNumProperties; ++p) {
        serving::SnapshotOpinion opinion;
        opinion.entity = name;
        opinion.type = type;
        opinion.property = "prop" + std::to_string(p);
        opinion.posterior = rng.Uniform();
        opinion.polarity =
            opinion.posterior >= 0.5 ? Polarity::kPositive
                                     : Polarity::kNegative;
        SURVEYOR_CHECK(writer.Add(opinion).ok());
      }
    }
  }
  const std::string path = "/tmp/surveyor_query_bench.surv";
  SURVEYOR_CHECK(writer.WriteToFile(path).ok());
  return path;
}

std::string EntityName(uint64_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "entity-%d-%04d",
                static_cast<int>(i / kEntitiesPerType % kNumTypes),
                static_cast<int>(i % kEntitiesPerType));
  return name;
}

/// Lookups/second for `iterations` point lookups drawn by `next_key`.
template <typename NextKey>
double LookupsPerSecond(const serving::OpinionIndex& index, int iterations,
                        NextKey&& next_key) {
  // Warm pass so the measured loop sees a steady-state cache.
  for (int i = 0; i < iterations / 4; ++i) {
    const auto [entity, property] = next_key(i);
    (void)index.Lookup(entity, property);
  }
  bench::Stopwatch timer;
  for (int i = 0; i < iterations; ++i) {
    const auto [entity, property] = next_key(i);
    SURVEYOR_CHECK(index.Lookup(entity, property).ok());
  }
  return iterations / timer.ElapsedSeconds();
}

int Run(const std::string& out_path) {
  const std::string path = BuildSnapshot();

  serving::OpinionIndexOptions options;
  options.cache_capacity = 8192;
  options.cache_shards = 8;
  serving::OpinionIndex index(options);
  SURVEYOR_CHECK(index.Load(path).ok());
  const size_t num_opinions = index.generation()->snapshot().num_opinions();

  // Hot: a 64-pair working set that fits every shard — the acceptance
  // number (>= 100k/s) is this one.
  const double hot_per_second =
      LookupsPerSecond(index, 1 << 18, [](int i) {
        return std::pair<std::string, std::string>(
            EntityName(static_cast<uint64_t>(i) % 8),
            "prop" + std::to_string(i % 8));
      });

  // Cold: uniform over all 48k pairs, so most lookups decode records.
  Rng rng(99);
  const double cold_per_second =
      LookupsPerSecond(index, 1 << 16, [&rng](int) {
        return std::pair<std::string, std::string>(
            EntityName(rng.UniformInt(kNumTypes * kEntitiesPerType)),
            "prop" + std::to_string(rng.UniformInt(kNumProperties)));
      });

  // Uncached: the same cold distribution with the cache disabled — the
  // floor the cache is measured against.
  serving::OpinionIndexOptions uncached_options;
  uncached_options.cache_capacity = 0;
  serving::OpinionIndex uncached(uncached_options);
  SURVEYOR_CHECK(uncached.Load(path).ok());
  Rng rng2(99);
  const double uncached_per_second =
      LookupsPerSecond(uncached, 1 << 16, [&rng2](int) {
        return std::pair<std::string, std::string>(
            EntityName(rng2.UniformInt(kNumTypes * kEntitiesPerType)),
            "prop" + std::to_string(rng2.UniformInt(kNumProperties)));
      });

  // Batch: 64-pair batches over the hot set.
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 64; ++i) {
    batch.emplace_back(EntityName(static_cast<uint64_t>(i) % 32),
                       "prop" + std::to_string(i % kNumProperties));
  }
  bench::Stopwatch batch_timer;
  constexpr int kBatchRounds = 2000;
  for (int i = 0; i < kBatchRounds; ++i) {
    SURVEYOR_CHECK(index.BatchLookup(batch).size() == batch.size());
  }
  const double batch_lookups_per_second =
      kBatchRounds * static_cast<double>(batch.size()) /
      batch_timer.ElapsedSeconds();

  // Type scan ("safe cities"): 500 entities filtered + sorted per call.
  bench::Stopwatch scan_timer;
  constexpr int kScans = 500;
  for (int i = 0; i < kScans; ++i) {
    SURVEYOR_CHECK(
        !index.QueryType("type" + std::to_string(i % kNumTypes),
                         "prop" + std::to_string(i % kNumProperties), 10)
             .empty());
  }
  const double scans_per_second = kScans / scan_timer.ElapsedSeconds();

  // In-process handler path: URL parse -> readiness gate -> lookup ->
  // JSON. No socket is involved, hence the "synthetic" in the name — real
  // wire throughput is measured separately below.
  serving::QueryService service(&index, nullptr, &index.metrics());
  bench::Stopwatch service_timer;
  constexpr int kRequests = 1 << 16;
  for (int i = 0; i < kRequests; ++i) {
    SURVEYOR_CHECK(service
                       .Handle("GET",
                               "/query?entity=" + EntityName(i % 8) +
                                   "&property=prop" + std::to_string(i % 8),
                               "")
                       .status == 200);
  }
  const double handler_calls_per_second =
      kRequests / service_timer.ElapsedSeconds();

  // Request-tracing overhead on the admin request path: the same hot
  // /query handled through AdminServer::Handle (RequestScope + access log
  // around the dispatch) with tracing disarmed, at the default sample
  // rate, and with every request sampled. The committed ratio documents
  // what observability costs; the guard below fails the bench if default
  // sampling ever eats more than half the disarmed throughput.
  const auto admin_calls_per_second = [&](double sample_rate,
                                          double slow_query_ms,
                                          size_t access_log_capacity) {
    obs::MetricRegistry admin_metrics;
    serving::OpinionIndexOptions trace_options;
    trace_options.cache_capacity = 8192;
    trace_options.cache_shards = 8;
    trace_options.metrics = &admin_metrics;
    serving::OpinionIndex traced_index(trace_options);
    SURVEYOR_CHECK(traced_index.Load(path).ok());
    serving::QueryService traced_service(&traced_index, nullptr,
                                         &admin_metrics);
    obs::AdminServerOptions admin_options;
    admin_options.trace_sample_rate = sample_rate;
    admin_options.slow_query_ms = slow_query_ms;
    admin_options.access_log_capacity = access_log_capacity;
    obs::AdminServer server(&admin_metrics, nullptr, nullptr, admin_options);
    traced_service.Register(&server);
    constexpr int kAdminRequests = 1 << 15;
    // Warm pass: fill the cache so the measured loop is steady-state.
    for (int i = 0; i < kAdminRequests / 4; ++i) {
      (void)server.Handle("GET", "/query?entity=" + EntityName(i % 8) +
                                     "&property=prop" + std::to_string(i % 8));
    }
    bench::Stopwatch timer;
    for (int i = 0; i < kAdminRequests; ++i) {
      SURVEYOR_CHECK(
          server
              .Handle("GET", "/query?entity=" + EntityName(i % 8) +
                                 "&property=prop" + std::to_string(i % 8))
              .status == 200);
    }
    return kAdminRequests / timer.ElapsedSeconds();
  };
  const double traced_off_per_second =
      admin_calls_per_second(/*sample_rate=*/0.0, /*slow_query_ms=*/0.0,
                             /*access_log_capacity=*/0);
  const double traced_default_per_second =
      admin_calls_per_second(/*sample_rate=*/0.01, /*slow_query_ms=*/250.0,
                             /*access_log_capacity=*/512);
  const double traced_always_per_second =
      admin_calls_per_second(/*sample_rate=*/1.0, /*slow_query_ms=*/250.0,
                             /*access_log_capacity=*/512);

  // Real HTTP over loopback: sequential HTTP/1.0 requests against a
  // started server, connection setup and teardown included. This is the
  // honest wire number; expect it orders of magnitude below the
  // in-process handler rate.
  double http_requests_per_second = 0.0;
#ifdef SURVEYOR_BENCH_HAVE_SOCKETS
  {
    obs::MetricRegistry http_metrics;
    serving::QueryService http_service(&index, nullptr, &http_metrics);
    obs::AdminServer server(&http_metrics, nullptr, nullptr);
    http_service.Register(&server);
    SURVEYOR_CHECK(server.Start().ok());
    const int port = server.port();
    const auto http_get = [port](const std::string& target) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return false;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<uint16_t>(port));
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
        ::close(fd);
        return false;
      }
      const std::string request =
          "GET " + target + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
      size_t sent = 0;
      while (sent < request.size()) {
        const ssize_t n =
            ::write(fd, request.data() + sent, request.size() - sent);
        if (n <= 0) break;
        sent += static_cast<size_t>(n);
      }
      char buffer[4096];
      bool ok = false;
      for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n <= 0) break;
        if (!ok) {
          ok = std::string_view(buffer, static_cast<size_t>(n))
                   .find("200 OK") != std::string_view::npos;
        }
      }
      ::close(fd);
      return ok;
    };
    constexpr int kHttpRequests = 2000;
    for (int i = 0; i < kHttpRequests / 4; ++i) {  // warm
      (void)http_get("/query?entity=" + EntityName(i % 8) + "&property=prop" +
                     std::to_string(i % 8));
    }
    bench::Stopwatch http_timer;
    for (int i = 0; i < kHttpRequests; ++i) {
      SURVEYOR_CHECK(http_get("/query?entity=" + EntityName(i % 8) +
                              "&property=prop" + std::to_string(i % 8)));
    }
    http_requests_per_second = kHttpRequests / http_timer.ElapsedSeconds();
    server.Stop();
  }
#endif

  // Concurrent hot lookups across 4 threads (the serving steady state).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1 << 16;
  bench::Stopwatch threads_timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&index, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SURVEYOR_CHECK(
            index
                .Lookup(EntityName(static_cast<uint64_t>(t * 8 + i) % 32),
                        "prop" + std::to_string(i % 8))
                .ok());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double concurrent_per_second =
      kThreads * static_cast<double>(kPerThread) /
      threads_timer.ElapsedSeconds();

  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("benchmark")
      .Value("query.synthetic8x500x12")
      .Key("snapshot")
      .BeginObject()
      .Key("opinions")
      .Value(static_cast<int64_t>(num_opinions))
      .Key("entities")
      .Value(static_cast<int64_t>(index.generation()->snapshot().num_entities()))
      .Key("properties")
      .Value(static_cast<int64_t>(index.generation()->snapshot().num_properties()))
      .EndObject()
      .Key("lookups_per_second")
      .BeginObject()
      .Key("cached_hot")
      .Value(hot_per_second)
      .Key("cached_cold")
      .Value(cold_per_second)
      .Key("uncached")
      .Value(uncached_per_second)
      .Key("batch")
      .Value(batch_lookups_per_second)
      .Key("concurrent_4_threads")
      .Value(concurrent_per_second)
      .EndObject()
      .Key("type_scans_per_second")
      .Value(scans_per_second)
      .Key("handler_calls_per_second_synthetic")
      .Value(handler_calls_per_second)
      .Key("http_requests_per_second")
      .Value(http_requests_per_second)
      .Key("tracing")
      .BeginObject()
      .Key("admin_calls_per_second_disarmed")
      .Value(traced_off_per_second)
      .Key("admin_calls_per_second_default_sampling")
      .Value(traced_default_per_second)
      .Key("admin_calls_per_second_always_sampled")
      .Value(traced_always_per_second)
      .Key("default_sampling_relative_throughput")
      .Value(traced_off_per_second > 0
                 ? traced_default_per_second / traced_off_per_second
                 : 0.0)
      .EndObject()
      .EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << writer.str() << "\n";
  std::cout << "wrote " << out_path << ": "
            << static_cast<long long>(hot_per_second)
            << " cached point lookups/s ("
            << static_cast<long long>(uncached_per_second) << "/s uncached, "
            << static_cast<long long>(handler_calls_per_second)
            << " handler calls/s, "
            << static_cast<long long>(http_requests_per_second)
            << " HTTP requests/s); tracing keeps "
            << static_cast<long long>(100.0 * traced_default_per_second /
                                      traced_off_per_second)
            << "% of disarmed admin throughput at the default sample rate\n";
  if (hot_per_second < 100000) {
    std::cerr << "query_bench: cached point lookups below the 100k/s "
                 "acceptance floor\n";
    return 1;
  }
  if (traced_default_per_second < 0.5 * traced_off_per_second) {
    std::cerr << "query_bench: default-rate tracing costs more than half "
                 "the disarmed admin throughput\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace surveyor

int main(int argc, char** argv) {
  return surveyor::Run(argc > 1 ? argv[1] : "BENCH_query.json");
}
