// Reproduces Table 1 (Section 4) and Figure 5 literally: the paper's own
// example sentences run through the actual annotation + extraction
// pipeline, printing the detected pattern, entity, property and polarity.
#include <iostream>

#include "extraction/extractor.h"
#include "text/annotator.h"
#include "util/table.h"

namespace surveyor {
namespace {

void Run() {
  // A knowledge base holding the entities of the paper's examples.
  KnowledgeBase kb;
  const TypeId animal = kb.AddType("animal");
  const TypeId city = kb.AddType("city");
  const TypeId sport = kb.AddType("sport");
  const EntityId snake = kb.AddEntity("snake", animal).value();
  SURVEYOR_CHECK_OK(kb.AddAlias("snakes", snake));
  const EntityId kitten = kb.AddEntity("kitten", animal).value();
  SURVEYOR_CHECK_OK(kb.AddAlias("kittens", kitten));
  (void)kb.AddEntity("chicago", city).value();
  (void)kb.AddEntity("soccer", sport).value();
  (void)kb.AddEntity("new york", city).value();
  (void)kb.AddEntity("palo alto", city).value();

  Lexicon lexicon;
  lexicon.AddNounWithPlural("animal");
  lexicon.AddNounWithPlural("city");
  lexicon.AddNounWithPlural("sport");
  for (const char* adjective :
       {"dangerous", "big", "fast", "exciting", "cute", "bad", "small"}) {
    lexicon.AddWord(adjective, Pos::kAdjective);
  }
  lexicon.AddWord("parking", Pos::kNoun);

  TextAnnotator annotator(&kb, &lexicon);
  EvidenceExtractor extractor;  // version 4

  const char* sentences[] = {
      // Table 1's three rows.
      "Snakes are dangerous animals",
      "Chicago is very big",
      "Soccer is a fast and exciting sport",
      // Figure 5's double negation.
      "I don't think that snakes are never dangerous",
      // Figure 1's opening example (small clause).
      "I find kittens cute",
      // Section 4's non-intrinsic examples (must yield NO extraction).
      "New York is bad for parking",
      // The paper's tie to antonyms (kept as an ordinary statement).
      "Palo Alto is small",
  };

  std::cout << "==== Table 1 / Figures 1 & 5: example extractions ====\n\n";
  TextTable table({"Statement", "Pattern", "Entity", "Property", "Polarity"});
  for (const char* sentence : sentences) {
    const AnnotatedSentence annotated = annotator.AnnotateSentence(sentence);
    const auto statements = extractor.ExtractFromSentence(annotated);
    if (statements.empty()) {
      table.AddRow({sentence, "-", "-", "-",
                    annotated.parsed ? "(filtered)" : "(unparsed)"});
      continue;
    }
    for (const EvidenceStatement& statement : statements) {
      table.AddRow({sentence, std::string(PatternKindName(statement.pattern)),
                    kb.entity(statement.entity).canonical_name,
                    statement.property, statement.positive ? "+" : "-"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nPaper Table 1: (snake, dangerous) via amod, (chicago, very\n"
               "big) via acomp, (soccer, exciting) via conjunction — plus\n"
               "(soccer, fast) via amod. Fig. 5's double negation resolves\n"
               "positive; \"bad for parking\" is filtered as non-intrinsic.\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
