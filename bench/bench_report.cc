// Writes a machine-readable performance snapshot (BENCH_pipeline.json) so
// the repo's perf trajectory is tracked in-tree: end-to-end pipeline wall
// time and throughput on a fixed synthetic corpus, the process's peak RSS
// from the obs resource sampler, and ns/op for the observability hot
// paths. Run via tools/run_bench.sh, which commits the refreshed snapshot.
//
//   bench_report [out.json]   (default: BENCH_pipeline.json)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "obs/log_ring.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "surveyor/pipeline.h"
#include "util/profile_tag.h"

namespace surveyor {
namespace {

/// ns/op for `op` over `iterations` runs (one warm call first).
template <typename Fn>
double NanosPerOp(int iterations, Fn&& op) {
  op();
  bench::Stopwatch timer;
  for (int i = 0; i < iterations; ++i) op();
  return timer.ElapsedSeconds() * 1e9 / iterations;
}

int Run(const std::string& out_path) {
  // Fixed-seed corpus: the numbers stay comparable across commits.
  World world = World::Generate(MakeWebScaleWorldConfig(12, 23)).value();
  GeneratorOptions generator_options;
  generator_options.author_population = 8000;
  generator_options.seed = 7200;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, generator_options).Generate();

  SurveyorConfig config;
  config.min_statements = 100;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
  bench::Stopwatch timer;
  auto result = pipeline.Run(corpus);
  const double wall_seconds = timer.ElapsedSeconds();
  SURVEYOR_CHECK(result.ok());
  const PipelineStats& stats = result->stats;

  const obs::ResourceSample resources = obs::SampleProcessResources();

  // Observability hot paths, measured inline — coarse but dependency-free
  // (bench/micro_benchmarks.cc has the google-benchmark versions).
  obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_total");
  obs::Gauge* gauge = registry.GetGauge("bench_gauge");
  const double counter_ns = NanosPerOp(1 << 20, [&] { counter->Increment(); });
  const double gauge_ns = NanosPerOp(1 << 20, [&] { gauge->Set(1.0); });
  obs::Tracer::Global().SetEnabled(false);
  const double span_disabled_ns =
      NanosPerOp(1 << 18, [] { SURVEYOR_SPAN("bench"); });
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetEnabled(true);
  const double span_enabled_ns =
      NanosPerOp(1 << 16, [] { SURVEYOR_SPAN("bench"); });
  obs::Tracer::Global().SetEnabled(false);
  obs::LogRing ring;
  const double log_append_ns = NanosPerOp(
      1 << 16, [&] { ring.Append(LogSeverity::kInfo, "bench line"); });
  // Request scopes: disarmed (the serving fast path when tracing is off)
  // and fully sampled (span routing + the retention ring).
  obs::RequestTracerOptions disarmed_options;
  disarmed_options.sample_rate = 0.0;
  disarmed_options.slow_threshold_seconds = 0.0;
  obs::RequestTracer disarmed_tracer(disarmed_options);
  const double request_scope_disarmed_ns = NanosPerOp(1 << 16, [&] {
    obs::RequestScope scope(&disarmed_tracer, nullptr, "GET", "/bench");
  });
  obs::RequestTracerOptions sampled_options;
  sampled_options.sample_rate = 1.0;
  obs::RequestTracer sampled_tracer(sampled_options);
  const double request_scope_sampled_ns = NanosPerOp(1 << 14, [&] {
    obs::RequestScope scope(&sampled_tracer, nullptr, "GET", "/bench");
    SURVEYOR_SPAN("bench.child");
  });
  // The profiler's hot-path tax with the sampler off (the default).
  const double profile_scope_disarmed_ns =
      NanosPerOp(1 << 20, [] { SURVEYOR_PROFILE_SCOPE("bench"); });

  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("benchmark")
      .Value("pipeline.webscale12x23.authors8000");
  // Which binary produced these numbers (git sha, compiler, build type).
  obs::AppendBuildInfoJson(writer);
  writer.Key("pipeline")
      .BeginObject()
      .Key("wall_seconds")
      .Value(wall_seconds)
      .Key("documents")
      .Value(stats.num_documents)
      .Key("statements")
      .Value(stats.num_statements)
      .Key("opinions")
      .Value(stats.num_opinions)
      .Key("docs_per_second")
      .Value(wall_seconds > 0 ? stats.num_documents / wall_seconds : 0.0)
      .Key("statements_per_second")
      .Value(wall_seconds > 0 ? stats.num_statements / wall_seconds : 0.0)
      .Key("extraction_seconds")
      .Value(stats.extraction_seconds)
      .Key("grouping_seconds")
      .Value(stats.grouping_seconds)
      .Key("em_seconds")
      .Value(stats.em_seconds)
      .EndObject()
      .Key("process")
      .BeginObject()
      .Key("sampler_valid")
      .Value(resources.valid)
      .Key("peak_rss_bytes")
      .Value(resources.peak_rss_bytes)
      .Key("cpu_seconds")
      .Value(resources.cpu_seconds)
      .EndObject()
      .Key("obs_ns_per_op")
      .BeginObject()
      .Key("counter_increment")
      .Value(counter_ns)
      .Key("gauge_set")
      .Value(gauge_ns)
      .Key("span_disabled")
      .Value(span_disabled_ns)
      .Key("span_enabled")
      .Value(span_enabled_ns)
      .Key("log_ring_append")
      .Value(log_append_ns)
      .Key("request_scope_disarmed")
      .Value(request_scope_disarmed_ns)
      .Key("request_scope_sampled")
      .Value(request_scope_sampled_ns)
      .Key("profile_scope_disarmed")
      .Value(profile_scope_disarmed_ns)
      .EndObject()
      .EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << writer.str() << "\n";
  std::cout << "wrote " << out_path << ": " << wall_seconds << "s wall, "
            << static_cast<long long>(stats.num_documents) << " docs, peak RSS "
            << resources.peak_rss_bytes / 1e6 << " MB\n";
  return 0;
}

}  // namespace
}  // namespace surveyor

int main(int argc, char** argv) {
  // A chaos-armed environment (retries, quarantines, backoff sleeps)
  // invalidates every number this tool writes into the committed snapshot.
  if (std::getenv("SURVEYOR_FAULTS") != nullptr) {
    std::cerr << "bench_report: refusing to run with SURVEYOR_FAULTS set; "
                 "unset it and rerun\n";
    return 1;
  }
  // An armed profiler (SURVEYOR_PROFILE makes the CLI arm it; a live
  // /profilez window has the same effect) adds a 97 Hz signal storm to
  // every measured path — same refusal posture as armed faults.
  if (std::getenv("SURVEYOR_PROFILE") != nullptr) {
    std::cerr << "bench_report: refusing to run with SURVEYOR_PROFILE set; "
                 "unset it and rerun\n";
    return 1;
  }
  return surveyor::Run(argc > 1 ? argv[1] : "BENCH_pipeline.json");
}
