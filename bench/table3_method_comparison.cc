// Reproduces Table 3 (Section 7.4): coverage, precision and F1 of
// Majority Vote, Scaled Majority Vote, WebChild and Surveyor on the
// curated 500-case test set, judged against simulated-AMT dominant
// opinions.
#include <iostream>

#include "baselines/majority_vote.h"
#include "eval/bootstrap.h"
#include "bench/bench_util.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

void Run() {
  bench::PreparedWorld setup = bench::MakePaperSetup();
  Rng rng(103);
  const std::vector<LabeledTestCase> labeled = LabelWithAmt(
      setup.world, SelectCuratedTestCases(setup.world, 20), AmtOptions{20},
      rng);

  MajorityVoteClassifier mv;
  ScaledMajorityVoteClassifier smv(setup.harness.global_scale());
  SurveyorClassifier surveyor_method;

  bench::PrintHeader("Table 3: comparison of statement-count interpreters");
  std::cout << StrFormat(
      "test cases: %zu   extracted statements: %lld   global +/- scale "
      "(SMV): %.2f\n\n",
      labeled.size(),
      static_cast<long long>(setup.harness.total_statements()),
      setup.harness.global_scale());

  TextTable table({"Approach", "Coverage", "Precision", "F1",
                   "precision 95% CI"});
  const OpinionClassifier* methods[] = {&mv, &smv, &setup.harness.webchild(),
                                        &surveyor_method};
  for (const OpinionClassifier* method : methods) {
    const auto outcomes = setup.harness.EvaluateCases(*method, labeled);
    const EvalMetrics metrics = setup.harness.Evaluate(*method, labeled);
    const BootstrapResult ci = BootstrapMetrics(outcomes);
    table.AddRow({method->name(), TextTable::Num(metrics.coverage()),
                  TextTable::Num(metrics.precision()),
                  TextTable::Num(metrics.f1()),
                  StrFormat("[%.3f, %.3f]", ci.precision.lo,
                            ci.precision.hi)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper (absolute numbers differ; ordering should hold):\n"
               "  MV 0.483/0.29/0.36, SMV 0.486/0.37/0.42,\n"
               "  WebChild 0.477/0.54/0.51, Surveyor 0.966/0.77/0.84\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
