// Reproduces Figure 3 (Section 2 empirical study): 461 Californian cities,
// property "big". Reports statement counts versus population (3a/3b), the
// majority-vote polarity (3c) and the probabilistic-model polarity (3d),
// plus the rank correlations that quantify the visual difference.
#include <cmath>
#include <iostream>

#include "baselines/majority_vote.h"
#include "eval/hit_counter.h"
#include "bench/bench_util.h"
#include "surveyor/surveyor_classifier.h"
#include "util/math.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

int PopulationDecade(double population) {
  return static_cast<int>(std::floor(std::log10(std::max(population, 1.0))));
}

void Run() {
  GeneratorOptions generator_options;
  generator_options.author_population = 20000;
  generator_options.seed = 301;
  generator_options.exposure_exponent = 0.85;
  bench::PreparedWorld setup(MakeBigCityWorldConfig(461), generator_options);

  const TypeId city = setup.world.kb().TypeByName("city").value();
  const PropertyTypeEvidence* evidence =
      setup.harness.EvidenceFor(city, "big");
  SURVEYOR_CHECK(evidence != nullptr);

  MajorityVoteClassifier mv;
  SurveyorClassifier surveyor_method;
  const auto mv_polarity = mv.Classify(*evidence);
  const auto model_polarity = surveyor_method.Classify(*evidence);
  auto fit = surveyor_method.Fit(*evidence);
  SURVEYOR_CHECK(fit.ok());

  // --- Fig. 3(a)/3(b): counts vs population, binned by decade -------------
  bench::PrintHeader(
      "Figure 3(a)/3(b): statement counts by population decade");
  TextTable counts_table({"population decade", "#cities", "mean C+",
                          "max C+", "mean C-", "max C-"});
  for (int decade = 2; decade <= 7; ++decade) {
    int cities_in_bin = 0;
    double sum_pos = 0, sum_neg = 0;
    int64_t max_pos = 0, max_neg = 0;
    for (size_t i = 0; i < evidence->entities.size(); ++i) {
      const double population =
          setup.world.kb()
              .GetAttribute(evidence->entities[i], "population")
              .value();
      if (PopulationDecade(population) != decade) continue;
      ++cities_in_bin;
      sum_pos += static_cast<double>(evidence->counts[i].positive);
      sum_neg += static_cast<double>(evidence->counts[i].negative);
      max_pos = std::max(max_pos, evidence->counts[i].positive);
      max_neg = std::max(max_neg, evidence->counts[i].negative);
    }
    if (cities_in_bin == 0) continue;
    counts_table.AddRow({StrFormat("10^%d..10^%d", decade, decade + 1),
                         StrFormat("%d", cities_in_bin),
                         TextTable::Num(sum_pos / cities_in_bin, 1),
                         StrFormat("%lld", static_cast<long long>(max_pos)),
                         TextTable::Num(sum_neg / cities_in_bin, 2),
                         StrFormat("%lld", static_cast<long long>(max_neg))});
  }
  counts_table.Print(std::cout);

  // --- Fig. 3(c)/3(d): polarity by population decade ----------------------
  bench::PrintHeader("Figure 3(c)/3(d): polarity by population decade");
  TextTable polarity_table({"population decade", "MV +", "MV N", "MV -",
                            "Model +", "Model N", "Model -"});
  for (int decade = 2; decade <= 7; ++decade) {
    int mv_counts[3] = {0, 0, 0};
    int model_counts[3] = {0, 0, 0};
    auto bucket = [](Polarity p) {
      return p == Polarity::kPositive ? 0 : (p == Polarity::kNeutral ? 1 : 2);
    };
    int cities_in_bin = 0;
    for (size_t i = 0; i < evidence->entities.size(); ++i) {
      const double population =
          setup.world.kb()
              .GetAttribute(evidence->entities[i], "population")
              .value();
      if (PopulationDecade(population) != decade) continue;
      ++cities_in_bin;
      ++mv_counts[bucket(mv_polarity[i])];
      ++model_counts[bucket(model_polarity[i])];
    }
    if (cities_in_bin == 0) continue;
    polarity_table.AddRow({StrFormat("10^%d..10^%d", decade, decade + 1),
                           StrFormat("%d", mv_counts[0]),
                           StrFormat("%d", mv_counts[1]),
                           StrFormat("%d", mv_counts[2]),
                           StrFormat("%d", model_counts[0]),
                           StrFormat("%d", model_counts[1]),
                           StrFormat("%d", model_counts[2])});
  }
  polarity_table.Print(std::cout);

  // --- Quantitative summary ------------------------------------------------
  std::vector<double> log_population, mv_score, model_score;
  int mv_undecided = 0;
  int model_undecided = 0;
  for (size_t i = 0; i < evidence->entities.size(); ++i) {
    const double population =
        setup.world.kb()
            .GetAttribute(evidence->entities[i], "population")
            .value();
    log_population.push_back(std::log10(population));
    mv_score.push_back(static_cast<double>(static_cast<int>(mv_polarity[i])));
    model_score.push_back(fit->responsibilities[i]);
    if (mv_polarity[i] == Polarity::kNeutral) ++mv_undecided;
    if (model_polarity[i] == Polarity::kNeutral) ++model_undecided;
  }
  // --- Section 2's actual instrument: exact-phrase hit counts -------------
  bench::PrintHeader(
      "Section 2 methodology: phrase-query hits vs NLP extraction");
  {
    PhraseHitCounter hits(setup.corpus);
    TextTable hit_table({"city", "population", "\"X is a big city\" hits",
                         "\"X is not a big city\" hits", "extracted C+",
                         "extracted C-"});
    for (const char* name :
         {"los angeles", "san francisco", "fresno", "palo alto", "eureka"}) {
      const EntityId entity = setup.world.kb().EntitiesByName(name)[0];
      size_t index = 0;
      for (size_t i = 0; i < evidence->entities.size(); ++i) {
        if (evidence->entities[i] == entity) index = i;
      }
      const EvidenceCounts phrase_counts =
          hits.QueryPair(name, "big", "city");
      hit_table.AddRow(
          {name,
           TextTable::Num(
               setup.world.kb().GetAttribute(entity, "population").value(), 0),
           StrFormat("%lld", static_cast<long long>(phrase_counts.positive)),
           StrFormat("%lld", static_cast<long long>(phrase_counts.negative)),
           StrFormat("%lld",
                     static_cast<long long>(evidence->counts[index].positive)),
           StrFormat("%lld", static_cast<long long>(
                                 evidence->counts[index].negative))});
    }
    hit_table.Print(std::cout);
    std::cout << "\nPhrase queries see only one fixed template; the NLP\n"
                 "patterns also catch paraphrases, conjunctions and embedded\n"
                 "clauses (the paper used queries for the exploration and the\n"
                 "NLP pipeline for the real system).\n";
  }

  bench::PrintHeader("Summary");
  TextTable summary({"measure", "majority vote", "probabilistic model"});
  summary.AddRow({"Spearman corr. with log10(population)",
                  TextTable::Num(SpearmanCorrelation(log_population, mv_score)),
                  TextTable::Num(
                      SpearmanCorrelation(log_population, model_score))});
  summary.AddRow({"undecided cities", StrFormat("%d", mv_undecided),
                  StrFormat("%d", model_undecided)});
  summary.AddRow({"fitted parameters", "-", fit->params.ToString()});
  summary.Print(std::cout);
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
