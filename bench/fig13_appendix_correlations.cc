// Reproduces Figure 13 (Appendix A): wealthy countries (GDP per capita),
// big Swiss lakes (area), and high British mountains (relative height) —
// majority vote versus the probabilistic model, with the rank correlation
// between polarity and the objective attribute.
#include <cmath>
#include <iostream>

#include "baselines/majority_vote.h"
#include "bench/bench_util.h"
#include "surveyor/surveyor_classifier.h"
#include "util/math.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

void RunScenario(const std::string& title, WorldConfig config,
                 const std::string& property, const std::string& attribute,
                 uint64_t corpus_seed) {
  GeneratorOptions generator_options;
  generator_options.author_population = 15000;
  generator_options.seed = corpus_seed;
  generator_options.exposure_exponent = 0.8;
  bench::PreparedWorld setup(std::move(config), generator_options);

  const PropertyTypeEvidence* evidence =
      setup.harness.EvidenceFor(0, property);
  SURVEYOR_CHECK(evidence != nullptr);

  MajorityVoteClassifier mv;
  SurveyorClassifier surveyor_method;
  const auto mv_polarity = mv.Classify(*evidence);
  auto fit = surveyor_method.Fit(*evidence);
  SURVEYOR_CHECK(fit.ok());

  std::vector<double> log_attribute, mv_score, model_score;
  int mv_undecided = 0;
  int model_correct_vs_truth = 0, model_decided = 0;
  const PropertyGroundTruth* truth =
      setup.world.FindGroundTruth(0, property);
  for (size_t i = 0; i < evidence->entities.size(); ++i) {
    const double value = setup.world.kb()
                             .GetAttribute(evidence->entities[i], attribute)
                             .value();
    log_attribute.push_back(std::log10(value));
    mv_score.push_back(static_cast<double>(static_cast<int>(mv_polarity[i])));
    model_score.push_back(fit->responsibilities[i]);
    if (mv_polarity[i] == Polarity::kNeutral) ++mv_undecided;
    const Polarity model_polarity = DecidePolarity(fit->responsibilities[i]);
    if (model_polarity != Polarity::kNeutral) {
      ++model_decided;
      if (model_polarity == truth->dominant[i]) ++model_correct_vs_truth;
    }
  }

  bench::PrintHeader(title);
  TextTable table({"measure", "majority vote", "probabilistic model"});
  table.AddRow({"entities", StrFormat("%zu", evidence->entities.size()),
                StrFormat("%zu", evidence->entities.size())});
  table.AddRow({"undecided", StrFormat("%d", mv_undecided), "0"});
  table.AddRow(
      {"Spearman corr. with log10(" + attribute + ")",
       TextTable::Num(SpearmanCorrelation(log_attribute, mv_score)),
       TextTable::Num(SpearmanCorrelation(log_attribute, model_score))});
  table.AddRow({"accuracy vs latent dominant opinion", "-",
                TextTable::Num(static_cast<double>(model_correct_vs_truth) /
                               std::max(model_decided, 1))});
  table.Print(std::cout);
}

void Run() {
  RunScenario("Figure 13(a): wealthy countries (GDP per capita)",
              MakeWealthyCountryWorldConfig(), "wealthy", "gdp per capita",
              1301);
  RunScenario("Figure 13(b): big lakes in Switzerland (area)",
              MakeBigLakeWorldConfig(), "big", "area", 1302);
  RunScenario("Figure 13(c): high mountains on the British Isles (height)",
              MakeHighMountainWorldConfig(), "high", "relative height", 1303);
  std::cout << "\nShape check (paper): the probabilistic model correlates\n"
               "much better with the objective attribute and decides every\n"
               "entity, while majority vote leaves sparse entities open.\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
