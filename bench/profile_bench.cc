// Writes BENCH_profile.json: the committed stage-attribution snapshot of
// the sampling profiler over the fixed bench corpus (the same world as
// BENCH_pipeline.json), plus the disarmed-overhead proof. This is the
// baseline the extraction-optimization work diffs against (ROADMAP item
// 1): if extraction's sample share drops, the flamegraph moved for real.
//
// Hard guards (exit 1):
//   - extraction-stage frames must hold >= 50% of samples (ISSUE 7
//     acceptance: the profiler must actually see the known hot stage);
//   - the disarmed ProfileScope tax on the per-sentence hot path must be
//     < 1% (same posture as the fault-point guard in micro_benchmarks).
//
//   profile_bench [out.json]   (default: BENCH_profile.json)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "obs/build_info.h"
#include "obs/json_writer.h"
#include "obs/profiler.h"
#include "obs/stage.h"
#include "surveyor/pipeline.h"
#include "text/annotator.h"
#include "text/tokenizer.h"
#include "util/profile_tag.h"

namespace surveyor {
namespace {

// Write-only target that keeps the tag-read benchmark from being
// optimized away (namespace scope: local set-but-unused triggers -Werror).
volatile bool tag_sink = false;

/// ns/op for `op` over `iterations` runs (one warm call first).
template <typename Fn>
double NanosPerOp(int iterations, Fn&& op) {
  op();
  bench::Stopwatch timer;
  for (int i = 0; i < iterations; ++i) op();
  return timer.ElapsedSeconds() * 1e9 / iterations;
}

int Run(const std::string& out_path) {
  if (!obs::Profiler::SupportedOnThisBuild()) {
    std::cerr << "profile_bench: profiler unsupported on this build "
                 "(sanitizer or platform); use a clean build dir\n";
    return 1;
  }

  // Fixed-seed corpus, identical to bench_report's, so the two committed
  // snapshots describe the same workload.
  World world = World::Generate(MakeWebScaleWorldConfig(12, 23)).value();
  GeneratorOptions generator_options;
  generator_options.author_population = 8000;
  generator_options.seed = 7200;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, generator_options).Generate();

  obs::StageTracker stage_tracker;
  SurveyorConfig config;
  config.min_statements = 100;
  config.stage_tracker = &stage_tracker;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);

  obs::ProfilerOptions profiler_options;
  profiler_options.stage_tracker = &stage_tracker;
  obs::Profiler& profiler = obs::Profiler::Global();
  SURVEYOR_CHECK_OK(profiler.Start(profiler_options));
  auto result = pipeline.Run(corpus);
  auto profile = profiler.Stop();
  SURVEYOR_CHECK(result.ok());
  SURVEYOR_CHECK(profile.ok());

  double extraction_fraction = 0.0;
  for (const obs::StageAttribution& row : profile->stages) {
    if (row.stage == "extracting") extraction_fraction += row.fraction;
  }

  // Disarmed overhead: what the hot path pays for being profilable when
  // nobody profiles. A mined sentence crosses ~4 scopes (tokenize, match,
  // parse, extract); compare that against the sentence's real cost.
  const double scope_ns =
      NanosPerOp(1 << 20, [] { SURVEYOR_PROFILE_SCOPE("bench"); });
  const double tag_read_ns = NanosPerOp(
      1 << 20, [] { tag_sink = CurrentProfileTag() != nullptr; });
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  std::vector<std::string> sentences;
  for (const RawDocument& doc : corpus) {
    for (const std::string& sentence : SplitSentences(doc.text)) {
      sentences.push_back(sentence);
    }
    if (sentences.size() >= 1024) break;
  }
  size_t index = 0;
  const double sentence_ns = NanosPerOp(1 << 14, [&] {
    annotator.AnnotateSentence(sentences[index++ % sentences.size()]);
  });
  const double scope_overhead_fraction = 4.0 * scope_ns / sentence_ns;

  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("benchmark")
      .Value("profile.webscale12x23.authors8000");
  obs::AppendBuildInfoJson(writer);
  writer.Key("profile")
      .BeginObject()
      .Key("samples")
      .Value(profile->samples)
      .Key("dropped")
      .Value(profile->dropped)
      .Key("duration_seconds")
      .Value(profile->duration_seconds)
      .Key("frequency_hz")
      .Value(profile->frequency_hz)
      .Key("distinct_stacks")
      .Value(static_cast<int64_t>(profile->folded.size()))
      .EndObject();
  writer.Key("stage_attribution").BeginArray();
  for (const obs::StageAttribution& row : profile->stages) {
    writer.BeginObject()
        .Key("stage")
        .Value(row.stage)
        .Key("tag")
        .Value(row.tag)
        .Key("samples")
        .Value(row.samples)
        .Key("fraction")
        .Value(row.fraction)
        .EndObject();
  }
  writer.EndArray();
  writer.Key("extraction_fraction").Value(extraction_fraction);
  writer.Key("disarmed_overhead")
      .BeginObject()
      .Key("profile_scope_ns")
      .Value(scope_ns)
      .Key("tag_read_ns")
      .Value(tag_read_ns)
      .Key("annotate_sentence_ns")
      .Value(sentence_ns)
      .Key("scope_overhead_fraction")
      .Value(scope_overhead_fraction)
      .EndObject()
      .EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << writer.str() << "\n";
  std::cout << "wrote " << out_path << ": " << profile->samples
            << " samples, extraction fraction " << extraction_fraction
            << ", disarmed scope overhead " << scope_overhead_fraction * 100
            << "%\n";

  if (extraction_fraction < 0.5) {
    std::cerr << "profile_bench: FAIL — extraction-stage frames hold "
              << extraction_fraction * 100
              << "% of samples, below the 50% acceptance floor\n";
    return 1;
  }
  if (!(scope_overhead_fraction < 0.01)) {
    std::cerr << "profile_bench: FAIL — disarmed ProfileScope overhead "
              << scope_overhead_fraction * 100
              << "% of the per-sentence hot path, above the 1% budget\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace surveyor

int main(int argc, char** argv) {
  // Armed faults perturb every measured path; an armed profiler would
  // measure its own signal storm. Both invalidate a committed snapshot.
  if (std::getenv("SURVEYOR_FAULTS") != nullptr) {
    std::cerr << "profile_bench: refusing to run with SURVEYOR_FAULTS set; "
                 "unset it and rerun\n";
    return 1;
  }
  if (std::getenv("SURVEYOR_PROFILE") != nullptr) {
    std::cerr << "profile_bench: refusing to run with SURVEYOR_PROFILE set "
                 "(the bench manages its own profile window); unset it and "
                 "rerun\n";
    return 1;
  }
  return surveyor::Run(argc > 1 ? argv[1] : "BENCH_profile.json");
}
