// Reproduces Table 4 (Appendix B): the four extraction-pattern versions.
// Reports extracted statement counts and extraction time per version, and
// extends the paper's qualitative "quality" judgment with a measured
// downstream precision (Surveyor fit on each version's evidence).
#include <iostream>

#include "bench/bench_util.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

struct VersionRow {
  PatternVersion version;
  const char* description;
};

void Run() {
  // Generate the corpus once.
  GeneratorOptions generator_options;
  generator_options.author_population = 10000;
  generator_options.seed = 101;
  World world = World::Generate(MakePaperWorldConfig(150)).value();
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, generator_options).Generate();
  Rng rng(103);
  const std::vector<LabeledTestCase> labeled =
      LabelWithAmt(world, SelectCuratedTestCases(world, 20), AmtOptions{20},
                   rng);

  const VersionRow versions[] = {
      {PatternVersion::kV1AmodCopula, "amod, copula class, no checks"},
      {PatternVersion::kV2AmodAcompCopula,
       "amod+acomp, copula class, no checks"},
      {PatternVersion::kV3AcompToBeChecks, "acomp, 'to be', checks"},
      {PatternVersion::kV4AmodAcompToBeChecks,
       "amod+acomp, 'to be', checks (final)"},
  };

  bench::PrintHeader("Table 4: comparison of extraction-pattern versions");
  TextTable table({"Vers.", "Modifiers/verbs/checks", "Statements",
                   "Extraction s", "Surveyor precision", "Surveyor F1"});
  for (const VersionRow& row : versions) {
    ExtractionOptions options;
    options.version = row.version;
    ComparisonHarness harness(&world.kb(), &world.lexicon(), options);
    bench::Stopwatch timer;
    SURVEYOR_CHECK_OK(harness.Prepare(corpus));
    const double seconds = timer.ElapsedSeconds();
    SurveyorClassifier surveyor_method;
    const EvalMetrics metrics = harness.Evaluate(surveyor_method, labeled);
    table.AddRow(
        {StrFormat("%d", static_cast<int>(row.version)), row.description,
         StrFormat("%lld", static_cast<long long>(harness.total_statements())),
         TextTable::Num(seconds, 2), TextTable::Num(metrics.precision()),
         TextTable::Num(metrics.f1())});
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper): v2 extracts the most statements; the\n"
               "checked versions (3/4) extract far fewer but of higher\n"
               "quality; v4 recovers most volume while keeping the checks.\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
