// Reproduces Figure 10 (Section 7.3): how many of 20 simulated AMT workers
// call each of the paper's twenty animals "cute", next to the latent
// opinion fraction and the Surveyor posterior for the same pair.
#include <iostream>

#include "bench/bench_util.h"
#include "eval/amt.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

constexpr const char* kFigure10Animals[] = {
    "pony",   "spider",  "koala",        "rat",       "scorpion",
    "crow",   "kitten",  "monkey",       "octopus",   "beaver",
    "goose",  "tiger",   "moose",        "frog",      "grizzly bear",
    "alligator", "puppy", "camel",       "white shark", "lion"};

void Run() {
  bench::PreparedWorld setup = bench::MakePaperSetup();
  const KnowledgeBase& kb = setup.world.kb();
  const TypeId animal = kb.TypeByName("animal").value();
  const PropertyTypeEvidence* evidence =
      setup.harness.EvidenceFor(animal, "cute");
  SURVEYOR_CHECK(evidence != nullptr);

  SurveyorClassifier surveyor_method;
  auto fit = surveyor_method.Fit(*evidence);
  SURVEYOR_CHECK(fit.ok());

  AmtSimulator amt(&setup.world, AmtOptions{20});
  Rng rng(1010);

  bench::PrintHeader("Figure 10: workers (out of 20) calling the animal cute");
  TextTable table({"animal", "workers saying cute", "latent fraction",
                   "C+", "C-", "Surveyor Pr(cute)"});
  for (const char* name : kFigure10Animals) {
    const std::vector<EntityId> ids = kb.EntitiesByName(name);
    SURVEYOR_CHECK(!ids.empty()) << name;
    const EntityId entity = ids[0];
    auto vote = amt.Collect(entity, "cute", rng);
    SURVEYOR_CHECK(vote.ok());
    size_t index = 0;
    for (size_t i = 0; i < evidence->entities.size(); ++i) {
      if (evidence->entities[i] == entity) index = i;
    }
    table.AddRow(
        {name, StrFormat("%d", vote->positive_votes),
         TextTable::Num(
             setup.world.PositiveFraction(entity, "cute").value(), 2),
         StrFormat("%lld",
                   static_cast<long long>(evidence->counts[index].positive)),
         StrFormat("%lld",
                   static_cast<long long>(evidence->counts[index].negative)),
         TextTable::Num(fit->responsibilities[index], 3)});
  }
  table.Print(std::cout);
  std::cout << "\nFitted model for (animal, cute): " << fit->params.ToString()
            << "\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
