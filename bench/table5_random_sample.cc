// Reproduces Table 5 (Appendix D): the four methods on randomly sampled
// property-type pairs (803 pairs x 7 entities for coverage; an 80-pair
// subset for precision). Random entities are mostly obscure, so baseline
// coverage collapses while Surveyor still decides from the per-pair model.
#include <iostream>

#include "baselines/majority_vote.h"
#include "bench/bench_util.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

void Run() {
  GeneratorOptions generator_options;
  generator_options.author_population = 4000;
  generator_options.seed = 909;
  generator_options.exposure_exponent = 0.9;
  bench::PreparedWorld setup(MakeWebScaleWorldConfig(/*num_types=*/25, 23),
                             generator_options);

  // Candidate pairs: combinations that passed the deployment threshold
  // (the paper samples from its large result set).
  const auto available = setup.harness.PairsAboveThreshold(100);
  std::cout << StrFormat("pairs above rho=100: %zu\n", available.size());

  Rng rng(505);
  const std::vector<TestCase> coverage_cases =
      SelectRandomTestCases(setup.world, available, /*num_pairs=*/803,
                            /*entities_per_pair=*/7, rng);
  const std::vector<LabeledTestCase> coverage_labeled =
      LabelWithAmt(setup.world, coverage_cases, AmtOptions{20}, rng);

  // Precision subset: the paper hand-checked 80 pairs x 1 entity; the
  // simulated ground truth is free, so we use 400 for a stabler estimate.
  const std::vector<TestCase> precision_cases = SelectRandomTestCases(
      setup.world, available, /*num_pairs=*/400, /*entities_per_pair=*/1, rng);
  const std::vector<LabeledTestCase> precision_labeled =
      LabelWithAmt(setup.world, precision_cases, AmtOptions{20}, rng);

  MajorityVoteClassifier mv;
  ScaledMajorityVoteClassifier smv(setup.harness.global_scale());
  SurveyorClassifier surveyor_method;
  const OpinionClassifier* methods[] = {&mv, &smv, &setup.harness.webchild(),
                                        &surveyor_method};

  bench::PrintHeader("Table 5: random sample of property-type combinations");
  std::cout << StrFormat(
      "coverage cases: %zu   precision cases: %zu\n\n",
      coverage_labeled.size(), precision_labeled.size());
  TextTable table({"Approach", "Coverage", "Precision", "F1"});
  for (const OpinionClassifier* method : methods) {
    const EvalMetrics coverage_metrics =
        setup.harness.Evaluate(*method, coverage_labeled);
    const EvalMetrics precision_metrics =
        setup.harness.Evaluate(*method, precision_labeled);
    // Paper protocol: coverage from the big sample, precision from the
    // labeled subset; F1 from the two.
    const double coverage = coverage_metrics.coverage();
    const double precision = precision_metrics.precision();
    const double f1 = (coverage + precision) == 0.0
                          ? 0.0
                          : 2.0 * coverage * precision / (coverage + precision);
    table.AddRow({method->name(), TextTable::Num(coverage, 3),
                  TextTable::Num(precision, 3), TextTable::Num(f1, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: MV 0.077/0.33/0.13, SMV 0.077/0.42/0.13,\n"
               "WebChild 0.17/0.62/0.27, Surveyor 0.999/0.78/0.88.\n"
               "Shape: baseline coverage collapses on random entities while\n"
               "Surveyor still answers nearly everything.\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
