// Reproduces Figure 6 + Example 1/3: the two two-dimensional probability
// distributions over evidence tuples induced by pA=0.9, n*p+S=100,
// n*p-S=5, and the classification of the example tuple (60, 3).
#include <iostream>

#include "model/user_model.h"
#include "util/math.h"
#include "util/string_util.h"
#include "util/table.h"

namespace surveyor {
namespace {

void PrintDistribution(const ModelParams& params, bool positive_component) {
  TextTable table({"C+ \\ C-", "0", "1", "2", "3", "5", "8", "10"});
  const int negatives[] = {0, 1, 2, 3, 5, 8, 10};
  for (int positive = 0; positive <= 110; positive += 10) {
    std::vector<std::string> row = {StrFormat("%d", positive)};
    for (int negative : negatives) {
      const EvidenceCounts counts{positive, negative};
      const double log_probability =
          positive_component ? LogLikelihoodPositive(counts, params)
                             : LogLikelihoodNegative(counts, params);
      row.push_back(TextTable::Num(log_probability, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

void Run() {
  const ModelParams params{0.9, 100.0, 5.0};
  const PoissonRates rates = RatesFromParams(params);

  std::cout << "==== Figure 6: log-probability of evidence tuples ====\n\n";
  std::cout << "Model parameters (paper Example 3): " << params.ToString()
            << "\n";
  std::cout << StrFormat(
      "Poisson rates: l++=%.1f l-+=%.1f l--=%.1f l+-=%.1f\n\n",
      rates.pos_given_pos, rates.neg_given_pos, rates.neg_given_neg,
      rates.pos_given_neg);

  std::cout << "--- 6(a): positive dominant opinion component ---\n";
  PrintDistribution(params, /*positive_component=*/true);
  std::cout << "\n--- 6(b): negative dominant opinion component ---\n";
  PrintDistribution(params, /*positive_component=*/false);

  const EvidenceCounts example{60, 3};
  std::cout << "\n==== Example 1: the evidence tuple (60, 3) ====\n\n";
  std::cout << StrFormat("log Pr(60,3 | D=+) = %.2f\n",
                         LogLikelihoodPositive(example, params));
  std::cout << StrFormat("log Pr(60,3 | D=-) = %.2f\n",
                         LogLikelihoodNegative(example, params));
  std::cout << StrFormat("Pr(D=+ | 60,3)     = %.6f  (paper: positive wins)\n",
                         PosteriorPositive(example, params));
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
