// Open-loop HTTP load harness for the epoll serving tier
// (BENCH_serving.json): real sockets, keep-alive connections, fixed
// offered rates with an absolute per-thread schedule (so latency is
// measured from the *intended* send time — no coordinated omission),
// p50/p99/p999 latency, and the error mix per section. A final overload
// section shrinks the request queue and slows the backend to prove
// admission control answers 429 + Retry-After instead of hanging.
//
// Run via tools/run_bench.sh, which commits the refreshed snapshot; the
// committed numbers are the repo's record that the serving tier sustains
// >= 10k req/s with keep-alive at p99 < 5 ms on the paper-world
// snapshot, and that overload sheds cleanly (429s, nothing else).
//
//   load_bench [out.json]   (default: BENCH_serving.json)
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#define SURVEYOR_BENCH_HAVE_SOCKETS 1
#endif

#include "bench/bench_util.h"
#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "obs/admin_server.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "serving/opinion_index.h"
#include "serving/query_service.h"
#include "serving/snapshot.h"
#include "surveyor/api.h"
#include "util/logging.h"

#ifndef SURVEYOR_BENCH_HAVE_SOCKETS

int main() {
  std::cerr << "load_bench needs BSD sockets\n";
  return 1;
}

#else

namespace surveyor {
namespace {

using Clock = std::chrono::steady_clock;

/// One persistent keep-alive connection speaking just enough HTTP/1.1
/// to drive the serving tier: write a request, read status line +
/// headers, honor Content-Length. Reconnects lazily after errors.
class KeepAliveClient {
 public:
  explicit KeepAliveClient(int port) : port_(port) {}
  ~KeepAliveClient() { Disconnect(); }

  /// Sends one GET and reads the full response. Returns the HTTP status
  /// code, or -1 on a transport error (the connection is then dropped
  /// and re-established on the next call).
  int Get(const std::string& target) {
    if (fd_ < 0 && !Connect()) return -1;
    const std::string request =
        "GET " + target + " HTTP/1.1\r\nHost: bench\r\n\r\n";
    if (!WriteAll(request)) {
      // The server may have idled us out between requests; one clean
      // reconnect attempt keeps keep-alive semantics honest.
      Disconnect();
      if (!Connect() || !WriteAll(request)) {
        Disconnect();
        return -1;
      }
    }
    const int status = ReadResponse();
    if (status < 0) Disconnect();
    return status;
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Disconnect();
      return false;
    }
    return true;
  }

  void Disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool WriteAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool FillBuffer() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  /// Reads exactly one response off the connection; leftover bytes stay
  /// buffered for the next call (responses never split across Get()s
  /// here, but the parse does not assume that).
  int ReadResponse() {
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!FillBuffer()) return -1;
    }
    const std::string_view head(buffer_.data(), head_end);
    // "HTTP/1.1 200 OK" -> 200.
    const size_t space = head.find(' ');
    if (space == std::string_view::npos || space + 4 > head.size()) return -1;
    int status = 0;
    for (int i = 0; i < 3; ++i) {
      const char c = head[space + 1 + static_cast<size_t>(i)];
      if (c < '0' || c > '9') return -1;
      status = status * 10 + (c - '0');
    }
    size_t content_length = 0;
    size_t line = 0;
    while (line < head_end) {
      size_t eol = head.find("\r\n", line);
      if (eol == std::string_view::npos) eol = head_end;
      const std::string_view header = head.substr(line, eol - line);
      constexpr std::string_view kName = "content-length:";
      if (header.size() > kName.size()) {
        bool match = true;
        for (size_t i = 0; i < kName.size(); ++i) {
          const char c = header[i];
          const char lower =
              c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
          if (lower != kName[i]) {
            match = false;
            break;
          }
        }
        if (match) {
          for (const char c : header.substr(kName.size())) {
            if (c >= '0' && c <= '9') {
              content_length = content_length * 10 +
                               static_cast<size_t>(c - '0');
            }
          }
        }
      }
      line = eol + 2;
    }
    const size_t total = head_end + 4 + content_length;
    while (buffer_.size() < total) {
      if (!FillBuffer()) return -1;
    }
    buffer_.erase(0, total);
    return status;
  }

  int port_;
  int fd_ = -1;
  std::string buffer_;
};

struct SectionResult {
  std::string name;
  double offered_rate = 0.0;       // req/s the schedule asked for
  double achieved_rate = 0.0;      // completed requests / wall time
  double duration_seconds = 0.0;
  int64_t ok = 0;                  // 2xx
  int64_t shed = 0;                // 429
  int64_t other = 0;               // any other HTTP status
  int64_t transport_errors = 0;    // broken connections
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_ms->size())));
  return (*sorted_ms)[index];
}

/// Open-loop load at a fixed offered rate: `threads` clients share the
/// schedule round-robin, each firing on its own absolute timeline
/// (start + k * interval). Latency is measured from the scheduled send
/// time, so a stalled server shows up as tail latency, not as a quietly
/// slower request stream.
SectionResult RunOpenLoop(const std::string& name, int port, double rate,
                          double seconds, int threads,
                          const std::vector<std::string>& targets) {
  SectionResult result;
  result.name = name;
  result.offered_rate = rate;
  const int64_t total =
      static_cast<int64_t>(rate * seconds);
  // Global schedule: request i fires at start + i/rate; thread t owns
  // slots t, t+threads, t+2*threads, ...
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(threads));
  std::vector<std::array<int64_t, 3>> counts(
      static_cast<size_t>(threads), {0, 0, 0});
  std::vector<int64_t> transport(static_cast<size_t>(threads), 0);

  bench::Stopwatch wall;
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      KeepAliveClient client(port);
      std::vector<double>& lat = latencies[static_cast<size_t>(t)];
      lat.reserve(static_cast<size_t>(total / threads + 1));
      for (int64_t i = t; i < total; i += threads) {
        const Clock::time_point scheduled = start + i * interval;
        std::this_thread::sleep_until(scheduled);
        const std::string& target =
            targets[static_cast<size_t>(i) % targets.size()];
        const int status = client.Get(target);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      scheduled)
                .count();
        if (status < 0) {
          ++transport[static_cast<size_t>(t)];
          continue;
        }
        lat.push_back(ms);
        auto& bucket = counts[static_cast<size_t>(t)];
        if (status >= 200 && status < 300) {
          ++bucket[0];
        } else if (status == 429) {
          ++bucket[1];
        } else {
          ++bucket[2];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  result.duration_seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  for (int t = 0; t < threads; ++t) {
    result.ok += counts[static_cast<size_t>(t)][0];
    result.shed += counts[static_cast<size_t>(t)][1];
    result.other += counts[static_cast<size_t>(t)][2];
    result.transport_errors += transport[static_cast<size_t>(t)];
  }
  const int64_t completed = result.ok + result.shed + result.other;
  result.achieved_rate =
      result.duration_seconds > 0
          ? static_cast<double>(completed) / result.duration_seconds
          : 0.0;
  result.p50_ms = Percentile(&all, 0.50);
  result.p99_ms = Percentile(&all, 0.99);
  result.p999_ms = Percentile(&all, 0.999);
  result.max_ms = all.empty() ? 0.0 : all.back();
  return result;
}

/// Closed-loop hammer: `threads` clients fire back-to-back for
/// `seconds`. Used for the overload section, where offered load must
/// exceed capacity by construction.
SectionResult RunClosedLoop(const std::string& name, int port, double seconds,
                            int threads,
                            const std::vector<std::string>& targets) {
  SectionResult result;
  result.name = name;
  std::vector<std::array<int64_t, 3>> counts(
      static_cast<size_t>(threads), {0, 0, 0});
  std::vector<int64_t> transport(static_cast<size_t>(threads), 0);
  std::atomic<bool> stop{false};

  bench::Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      KeepAliveClient client(port);
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const int status = client.Get(targets[i++ % targets.size()]);
        auto& bucket = counts[static_cast<size_t>(t)];
        if (status < 0) {
          ++transport[static_cast<size_t>(t)];
        } else if (status >= 200 && status < 300) {
          ++bucket[0];
        } else if (status == 429) {
          ++bucket[1];
        } else {
          ++bucket[2];
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  result.duration_seconds = wall.ElapsedSeconds();
  for (int t = 0; t < threads; ++t) {
    result.ok += counts[static_cast<size_t>(t)][0];
    result.shed += counts[static_cast<size_t>(t)][1];
    result.other += counts[static_cast<size_t>(t)][2];
    result.transport_errors += transport[static_cast<size_t>(t)];
  }
  const int64_t completed = result.ok + result.shed + result.other;
  result.achieved_rate =
      result.duration_seconds > 0
          ? static_cast<double>(completed) / result.duration_seconds
          : 0.0;
  return result;
}

void WriteSection(obs::JsonWriter* writer, const SectionResult& section) {
  writer->BeginObject()
      .Key("name")
      .Value(section.name)
      .Key("offered_rate")
      .Value(section.offered_rate)
      .Key("achieved_rate")
      .Value(section.achieved_rate)
      .Key("duration_seconds")
      .Value(section.duration_seconds)
      .Key("responses")
      .BeginObject()
      .Key("ok_2xx")
      .Value(section.ok)
      .Key("shed_429")
      .Value(section.shed)
      .Key("other")
      .Value(section.other)
      .Key("transport_errors")
      .Value(section.transport_errors)
      .EndObject()
      .Key("latency_ms")
      .BeginObject()
      .Key("p50")
      .Value(section.p50_ms)
      .Key("p99")
      .Value(section.p99_ms)
      .Key("p999")
      .Value(section.p999_ms)
      .Key("max")
      .Value(section.max_ms)
      .EndObject()
      .EndObject();
}

int Run(const std::string& out_path) {
  // The paper-world snapshot: mine the tiny synthetic world through the
  // public facade and freeze the result — the same corpus the README
  // walkthrough serves.
  World world = World::Generate(MakeTinyWorldConfig()).value();
  GeneratorOptions generator_options;
  generator_options.author_population = 4000;
  generator_options.seed = 19;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, generator_options).Generate();
  SurveyorConfig config;
  config.min_statements = 20;
  config.num_threads = 2;
  const auto mined = Mine(config, corpus, world.kb(), world.lexicon());
  SURVEYOR_CHECK(mined.ok());
  serving::SnapshotWriter writer;
  writer.set_label("load bench");
  SURVEYOR_CHECK(writer.AddResult(*mined, world.kb()).ok());
  const std::string path = "/tmp/surveyor_load_bench.surv";
  SURVEYOR_CHECK(writer.WriteToFile(path).ok());

  serving::OpinionIndex index;
  SURVEYOR_CHECK(index.Load(path).ok());

  // Request mix: every mined (entity, property) pair as a /v1/query
  // point lookup, URL-encoded.
  std::vector<std::string> targets;
  for (const PairOpinion& opinion : mined->Opinions()) {
    std::string entity = world.kb().entity(opinion.entity).canonical_name;
    for (size_t pos; (pos = entity.find(' ')) != std::string::npos;) {
      entity.replace(pos, 1, "%20");
    }
    targets.push_back("/v1/query?entity=" + entity +
                      "&property=" + opinion.property);
  }
  SURVEYOR_CHECK(!targets.empty());

  // --- Fixed-rate sections against a default-shaped server. -----------
  obs::MetricRegistry metrics;
  serving::QueryService service(&index, nullptr, &metrics);
  obs::AdminServerOptions options;
  options.trace_sample_rate = 0.01;  // production default: tracing on
  options.profiler_metrics = &metrics;
  obs::AdminServer server(&metrics, nullptr, nullptr, options);
  service.Register(&server);
  SURVEYOR_CHECK(server.Start().ok());

  const int client_threads = 2;
  // Warm the index cache and the connection path before measuring.
  (void)RunOpenLoop("warmup", server.port(), 2000.0, 0.5, client_threads,
                    targets);

  std::vector<SectionResult> sections;
  for (const double rate : {2000.0, 5000.0, 10000.0}) {
    char name[32];
    std::snprintf(name, sizeof(name), "keepalive_%dk",
                  static_cast<int>(rate / 1000));
    sections.push_back(RunOpenLoop(name, server.port(), rate, 2.0,
                                   client_threads, targets));
    const SectionResult& s = sections.back();
    std::cout << s.name << ": offered " << s.offered_rate << "/s, achieved "
              << static_cast<long long>(s.achieved_rate) << "/s, p50 "
              << s.p50_ms << " ms, p99 " << s.p99_ms << " ms, p999 "
              << s.p999_ms << " ms (" << s.ok << " ok, " << s.shed
              << " shed, " << s.other << " other, " << s.transport_errors
              << " transport)\n";
  }
  server.Stop();

  // --- Overload section: prove admission control sheds, never hangs. ---
  // A deliberately tiny server (one handler thread, shallow queue) with
  // a slowed backend, hammered closed-loop well past capacity. The
  // correct outcome is a mix of 200s and 429s and nothing else.
  obs::MetricRegistry overload_metrics;
  serving::QueryService overload_service(&index, nullptr, &overload_metrics);
  obs::AdminServerOptions overload_options;
  overload_options.serve_workers = 1;
  overload_options.handler_threads = 1;
  overload_options.queue_high_water = 4;
  overload_options.profiler_metrics = &overload_metrics;
  obs::AdminServer overload_server(&overload_metrics, nullptr, nullptr,
                                   overload_options);
  // The real /v1/query path, slowed to make the queue fill determinate:
  // 2 ms of handler time caps capacity at ~500/s against far more
  // offered load.
  overload_server.AddHandler(
      "/v1/query", [&overload_service](std::string_view method,
                                       std::string_view target,
                                       std::string_view body) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return overload_service.Handle(method, target, body);
      });
  SURVEYOR_CHECK(overload_server.Start().ok());
  SectionResult overload = RunClosedLoop("overload_shed", overload_server.port(),
                                         1.5, 8, targets);
  overload_server.Stop();
  std::cout << overload.name << ": achieved "
            << static_cast<long long>(overload.achieved_rate) << "/s ("
            << overload.ok << " ok, " << overload.shed << " shed, "
            << overload.other << " other, " << overload.transport_errors
            << " transport)\n";
  sections.push_back(overload);

  obs::JsonWriter json;
  json.BeginObject()
      .Key("benchmark")
      .Value("serving.load.paper_world")
      .Key("transport")
      .Value("http/1.1 keep-alive, open-loop schedule")
      .Key("client_threads")
      .Value(client_threads)
      .Key("snapshot_opinions")
      .Value(static_cast<int64_t>(mined->stats.num_opinions))
      .Key("sections")
      .BeginArray();
  for (const SectionResult& section : sections) {
    WriteSection(&json, section);
  }
  json.EndArray().EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str() << "\n";
  std::cout << "wrote " << out_path << "\n";

  // Acceptance floors, mirrored by tools/check_serving_bench.py on the
  // committed snapshot.
  const SectionResult& top = sections[sections.size() - 2];  // keepalive_10k
  if (top.achieved_rate < 10000.0 * 0.95) {
    std::cerr << "load_bench: 10k-offered section achieved only "
              << top.achieved_rate << " req/s\n";
    return 1;
  }
  if (top.p99_ms >= 5.0) {
    std::cerr << "load_bench: p99 " << top.p99_ms
              << " ms at 10k req/s breaches the 5 ms floor\n";
    return 1;
  }
  for (const SectionResult& section : sections) {
    if (section.other != 0 || section.transport_errors != 0) {
      std::cerr << "load_bench: section " << section.name
                << " saw non-2xx/429 responses\n";
      return 1;
    }
  }
  if (overload.shed == 0) {
    std::cerr << "load_bench: overload section never shed a request\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace surveyor

int main(int argc, char** argv) {
  return surveyor::Run(argc > 1 ? argv[1] : "BENCH_serving.json");
}

#endif  // SURVEYOR_BENCH_HAVE_SOCKETS
