#ifndef SURVEYOR_BENCH_BENCH_UTIL_H_
#define SURVEYOR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "eval/harness.h"
#include "eval/testcases.h"
#include "text/document.h"
#include "util/table.h"

namespace surveyor {
namespace bench {

/// Prints a section header for a reproduced table/figure.
inline void PrintHeader(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

/// Wall-clock stopwatch for bench-table timings. Production stage timing
/// lives in src/obs (SURVEYOR_SPAN + metrics); this stays bench-local.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A world + corpus + prepared comparison harness, the common setup of the
/// evaluation benches.
struct PreparedWorld {
  World world;
  std::vector<RawDocument> corpus;
  ComparisonHarness harness;
  double generate_seconds = 0.0;
  double prepare_seconds = 0.0;

  PreparedWorld(WorldConfig config, GeneratorOptions generator_options)
      : world(World::Generate(config).value()),
        harness(&world.kb(), &world.lexicon()) {
    Stopwatch timer;
    corpus = CorpusGenerator(&world, generator_options).Generate();
    generate_seconds = timer.ElapsedSeconds();
    timer.Reset();
    SURVEYOR_CHECK_OK(harness.Prepare(corpus));
    prepare_seconds = timer.ElapsedSeconds();
  }
};

/// The canonical paper-world setup used by the Table 3 / Fig. 11 / Fig. 12
/// benches (Section 7.3 protocol: 5 types x 5 properties x 20 entities).
inline PreparedWorld MakePaperSetup(int entities_per_type = 150,
                                    double author_population = 800,
                                    uint64_t corpus_seed = 101) {
  GeneratorOptions options;
  options.author_population = author_population;
  options.seed = corpus_seed;
  return PreparedWorld(MakePaperWorldConfig(entities_per_type), options);
}

}  // namespace bench
}  // namespace surveyor

#endif  // SURVEYOR_BENCH_BENCH_UTIL_H_
