// google-benchmark micro-benchmarks for the hot paths: tokenization,
// entity tagging, dependency parsing, evidence extraction, the EM
// iteration, posterior inference, and the observability primitives.
#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "extraction/extractor.h"
#include "model/em.h"
#include "obs/log_ring.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "text/annotator.h"
#include "text/tokenizer.h"
#include "util/fault.h"
#include "util/profile_tag.h"
#include "util/rng.h"
#include "util/sample_ring.h"

namespace surveyor {
namespace {

const World& SharedWorld() {
  static const World& world =
      *new World(World::Generate(MakePaperWorldConfig(150)).value());
  return world;
}

const std::vector<std::string>& SharedSentences() {
  static const std::vector<std::string>& sentences = *[] {
    auto* result = new std::vector<std::string>();
    GeneratorOptions options;
    options.author_population = 2000;
    options.seed = 4242;
    for (const RawDocument& doc :
         CorpusGenerator(&SharedWorld(), options).Generate()) {
      for (const std::string& sentence : SplitSentences(doc.text)) {
        result->push_back(sentence);
      }
      if (result->size() >= 4096) break;
    }
    return result;
  }();
  return sentences;
}

void BM_Tokenize(benchmark::State& state) {
  const auto& sentences = SharedSentences();
  const Lexicon& lexicon = SharedWorld().lexicon();
  size_t i = 0;
  int64_t tokens = 0;
  for (auto _ : state) {
    tokens += static_cast<int64_t>(
        Tokenize(sentences[i++ % sentences.size()], lexicon).size());
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(tokens);
}
BENCHMARK(BM_Tokenize);

void BM_AnnotateSentence(benchmark::State& state) {
  const auto& sentences = SharedSentences();
  const World& world = SharedWorld();
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  size_t i = 0;
  int64_t parsed = 0;
  for (auto _ : state) {
    parsed += annotator.AnnotateSentence(sentences[i++ % sentences.size()])
                      .parsed
                  ? 1
                  : 0;
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(parsed);
}
BENCHMARK(BM_AnnotateSentence);

void BM_ExtractFromSentence(benchmark::State& state) {
  const auto& sentences = SharedSentences();
  const World& world = SharedWorld();
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  std::vector<AnnotatedSentence> annotated;
  for (const std::string& sentence : sentences) {
    annotated.push_back(annotator.AnnotateSentence(sentence));
  }
  EvidenceExtractor extractor;
  size_t i = 0;
  int64_t statements = 0;
  for (auto _ : state) {
    statements += static_cast<int64_t>(
        extractor.ExtractFromSentence(annotated[i++ % annotated.size()])
            .size());
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(statements);
}
BENCHMARK(BM_ExtractFromSentence);

std::vector<EvidenceCounts> SyntheticCounts(size_t entities) {
  Rng rng(99);
  std::vector<EvidenceCounts> counts(entities);
  const PoissonRates rates = RatesFromParams({0.9, 50.0, 5.0});
  for (auto& c : counts) {
    const bool positive = rng.Bernoulli(0.3);
    c.positive = rng.Poisson(positive ? rates.pos_given_pos : rates.pos_given_neg);
    c.negative = rng.Poisson(positive ? rates.neg_given_pos : rates.neg_given_neg);
  }
  return counts;
}

void BM_EmFit(benchmark::State& state) {
  const auto counts = SyntheticCounts(static_cast<size_t>(state.range(0)));
  EmOptions options;
  options.max_iterations = 20;
  options.tolerance = 0.0;
  EmLearner learner(options);
  for (auto _ : state) {
    auto fit = learner.Fit(counts);
    benchmark::DoNotOptimize(fit);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EmFit)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PosteriorInference(benchmark::State& state) {
  const ModelParams params{0.9, 50.0, 5.0};
  Rng rng(7);
  std::vector<EvidenceCounts> counts = SyntheticCounts(1024);
  size_t i = 0;
  double sum = 0.0;
  for (auto _ : state) {
    sum += PosteriorPositive(counts[i++ % counts.size()], params);
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_PosteriorInference);

// --- Fault-injection overhead ------------------------------------------------
// Fault points are compiled into the production binary (DESIGN.md §9), so
// the disarmed check must stay near-free: one relaxed atomic load. The
// acceptance budget is < 1% overhead on the extraction hot path.

void BM_FaultPointDisarmed(benchmark::State& state) {
  FaultInjector::Global().Disarm();
  int64_t fired = 0;
  for (auto _ : state) {
    if (SURVEYOR_FAULT("bench_point")) ++fired;
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_FaultPointDisarmed);

// The extraction inner loop with a disarmed fault point on every sentence —
// compare against BM_ExtractFromSentence to read the relative overhead.
void BM_ExtractFromSentenceFaultGuarded(benchmark::State& state) {
  FaultInjector::Global().Disarm();
  const auto& sentences = SharedSentences();
  const World& world = SharedWorld();
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  std::vector<AnnotatedSentence> annotated;
  for (const std::string& sentence : sentences) {
    annotated.push_back(annotator.AnnotateSentence(sentence));
  }
  EvidenceExtractor extractor;
  size_t i = 0;
  int64_t statements = 0;
  for (auto _ : state) {
    if (SURVEYOR_FAULT("bench_extract")) continue;
    statements += static_cast<int64_t>(
        extractor.ExtractFromSentence(annotated[i++ % annotated.size()])
            .size());
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(statements);
}
BENCHMARK(BM_ExtractFromSentenceFaultGuarded);

// --- Profiler primitives -----------------------------------------------------
// ProfileScope tags ride inside Tokenize / Tag / Parse / ExtractFromSentence
// (DESIGN.md §12), so with the sampler off — the production default — their
// cost must stay under 1% of the per-sentence hot path. The budget proof
// with the actual ratio lives in bench/profile_bench.cc (BENCH_profile.json);
// these give the raw ns/op.

void BM_ProfileScopeDisarmed(benchmark::State& state) {
  for (auto _ : state) {
    SURVEYOR_PROFILE_SCOPE("bench");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileScopeDisarmed);

void BM_ProfileTagRead(benchmark::State& state) {
  SURVEYOR_PROFILE_SCOPE("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CurrentProfileTag());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileTagRead);

// The extraction inner loop under a ProfileScope with the sampler off —
// compare against BM_ExtractFromSentence for the relative overhead (the
// in-tree scopes are already inside both, so this adds one extra scope,
// an upper bound on the marginal cost).
void BM_ExtractFromSentenceProfileScoped(benchmark::State& state) {
  const auto& sentences = SharedSentences();
  const World& world = SharedWorld();
  TextAnnotator annotator(&world.kb(), &world.lexicon());
  std::vector<AnnotatedSentence> annotated;
  for (const std::string& sentence : sentences) {
    annotated.push_back(annotator.AnnotateSentence(sentence));
  }
  EvidenceExtractor extractor;
  size_t i = 0;
  int64_t statements = 0;
  for (auto _ : state) {
    SURVEYOR_PROFILE_SCOPE("bench_extract");
    statements += static_cast<int64_t>(
        extractor.ExtractFromSentence(annotated[i++ % annotated.size()])
            .size());
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(statements);
}
BENCHMARK(BM_ExtractFromSentenceProfileScoped);

// What the SIGPROF handler pays per sample (minus the backtrace itself):
// one slot claim plus a struct copy into preallocated memory.
void BM_SampleRingAppend(benchmark::State& state) {
  SampleRing ring(1 << 22);
  StackSample sample;
  sample.depth = 16;
  for (auto _ : state) {
    if (!ring.TryAppend(sample)) {
      state.PauseTiming();
      ring.Reset();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleRingAppend);

// --- Observability primitives -----------------------------------------------
// The instrumentation rides inside extraction/EM inner loops, so its cost
// budget is tight: counter increment < 20 ns, disabled span < 5 ns.

void BM_ObsCounterIncrement(benchmark::State& state) {
  static obs::MetricRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_counter_total");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterIncrement)->ThreadRange(1, 8);

void BM_ObsHistogramRecord(benchmark::State& state) {
  static obs::MetricRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("bench_histogram");
  double value = 0.0;
  for (auto _ : state) {
    histogram->Record(value);
    value += 1.0;
    if (value > 100000.0) value = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer::Global().SetEnabled(false);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.disabled");
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.enabled");
    benchmark::DoNotOptimize(span);
  }
  tracer.SetEnabled(false);
  tracer.Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanEnabled);

// Log-ring appends ride on every SURVEYOR_LOG through the global tee;
// once the ring is full each append overwrites a slot in place (reusing
// its string capacity) instead of erasing from the front.
void BM_LogRingAppend(benchmark::State& state) {
  obs::LogRing ring;
  for (auto _ : state) {
    ring.Append(LogSeverity::kInfo, "bench line");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogRingAppend);

// --- Request tracing ---------------------------------------------------------
// Every admin request runs under a RequestScope. Disarmed (sampling and
// tail capture off) is the budget case: a trace-id fetch, a TLS install
// and a few atomics. Sampled adds span collection and ring retention.

void BM_RequestScopeDisarmed(benchmark::State& state) {
  obs::RequestTracerOptions options;
  options.sample_rate = 0.0;
  options.slow_threshold_seconds = 0.0;
  obs::RequestTracer tracer(options);
  for (auto _ : state) {
    obs::RequestScope scope(&tracer, nullptr, "GET", "/bench");
    benchmark::DoNotOptimize(scope);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestScopeDisarmed);

void BM_RequestScopeSampled(benchmark::State& state) {
  obs::RequestTracerOptions options;
  options.sample_rate = 1.0;
  obs::RequestTracer tracer(options);
  for (auto _ : state) {
    obs::RequestScope scope(&tracer, nullptr, "GET", "/bench");
    SURVEYOR_SPAN("bench.child");
    benchmark::DoNotOptimize(scope);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestScopeSampled);

// A span inside a disarmed request scope: the TLS-read + null-check cost
// the serving layer pays per SURVEYOR_SPAN when nobody is tracing.
void BM_SpanUnderDisarmedScope(benchmark::State& state) {
  obs::Tracer::Global().SetEnabled(false);
  obs::RequestTracerOptions options;
  options.sample_rate = 0.0;
  options.slow_threshold_seconds = 0.0;
  obs::RequestTracer tracer(options);
  obs::RequestScope scope(&tracer, nullptr, "GET", "/bench");
  for (auto _ : state) {
    SURVEYOR_SPAN("bench.inner");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanUnderDisarmedScope);

}  // namespace
}  // namespace surveyor

BENCHMARK_MAIN();
