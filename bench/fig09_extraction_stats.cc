// Reproduces Figure 9 (Section 7.2 extraction statistics) on the
// many-type web-scale world: percentiles of (a) statements per entity,
// (b) statements per property-type combination, (c) properties with >= 100
// statements per type.
#include <iostream>

#include "bench/bench_util.h"
#include "eval/extraction_stats.h"
#include "util/math.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

void PrintPercentiles(const std::string& title, std::vector<double> values) {
  TextTable table({"percentile", "value"});
  for (double q : {5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 90.0, 95.0, 99.0, 100.0}) {
    table.AddRow({TextTable::Num(q, 0), TextTable::Num(Percentile(values, q), 1)});
  }
  bench::PrintHeader(title);
  table.Print(std::cout);
}

void Run() {
  GeneratorOptions generator_options;
  generator_options.author_population = 4000;
  generator_options.seed = 909;
  generator_options.exposure_exponent = 0.9;
  bench::PreparedWorld setup(MakeWebScaleWorldConfig(/*num_types=*/25, 23),
                             generator_options);
  const KnowledgeBase& kb = setup.world.kb();
  std::cout << StrFormat(
      "world: %zu types, %zu entities, %zu property-type pairs; corpus: %zu "
      "documents, %lld extracted statements\n",
      kb.num_types(), kb.num_entities(), setup.world.ground_truths().size(),
      setup.corpus.size(),
      static_cast<long long>(setup.harness.total_statements()));

  ExtractionStatistics stats = ComputeExtractionStatistics(
      kb, setup.harness.aggregator(), /*pair_threshold=*/100);
  PrintPercentiles(
      "Figure 9(a): statements extracted per knowledge-base entity",
      std::move(stats.statements_per_entity));
  PrintPercentiles(
      "Figure 9(b): statements per property-type combination (with >=1)",
      std::move(stats.statements_per_pair));
  PrintPercentiles(
      "Figure 9(c): properties with >=100 statements per entity type",
      std::move(stats.qualifying_properties_per_type));

  std::cout << "\nShape check (paper): most entities have ~zero statements;\n"
               "statement mass concentrates on few pairs; few types carry\n"
               "many properties.\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
