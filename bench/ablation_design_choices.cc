// Ablations of the design decisions DESIGN.md calls out:
//  1. per property-type parameters vs one global parameter set (paper
//     Section 5.1's central design choice);
//  2. negation-path polarity detection on/off (Section 4);
//  3. intrinsicness checks on/off (Section 4, Appendix B);
//  4. pA grid resolution (Section 6's fixed-set trick);
//  5. the posterior decision threshold (Section 3's precision/recall knob).
#include <iostream>

#include "bench/bench_util.h"
#include "model/em.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

/// A Surveyor variant that fits ONE parameter set on the union of all
/// property-type pairs' evidence and applies it everywhere — the paper's
/// rejected alternative to per-pair models.
class GlobalParamsClassifier : public OpinionClassifier {
 public:
  explicit GlobalParamsClassifier(ModelParams params) : params_(params) {}

  std::string name() const override { return "Surveyor (global params)"; }

  std::vector<Polarity> Classify(
      const PropertyTypeEvidence& evidence) const override {
    std::vector<Polarity> result(evidence.counts.size());
    for (size_t i = 0; i < evidence.counts.size(); ++i) {
      result[i] = DecidePolarity(PosteriorPositive(evidence.counts[i], params_));
    }
    return result;
  }

 private:
  ModelParams params_;
};


/// Filters the labeled cases to one property-type pair.
std::vector<LabeledTestCase> FilterPair(
    const std::vector<LabeledTestCase>& cases, TypeId type,
    const std::string& property) {
  std::vector<LabeledTestCase> result;
  for (const LabeledTestCase& l : cases) {
    if (l.test_case.type == type && l.test_case.property == property) {
      result.push_back(l);
    }
  }
  return result;
}

void Run() {
  bench::PreparedWorld setup = bench::MakePaperSetup();
  Rng rng(103);
  const std::vector<LabeledTestCase> labeled = LabelWithAmt(
      setup.world, SelectCuratedTestCases(setup.world, 20), AmtOptions{20},
      rng);
  // Spotlight pairs whose biases deviate from the average: the per-pair
  // model's reason to exist (paper Section 5.1).
  const TypeId celebrity = setup.world.kb().TypeByName("celebrity").value();
  const TypeId animal = setup.world.kb().TypeByName("animal").value();
  const std::vector<LabeledTestCase> quiet_cases =
      FilterPair(labeled, celebrity, "quiet");
  const std::vector<LabeledTestCase> cute_cases =
      FilterPair(labeled, animal, "cute");
  const std::vector<LabeledTestCase> dangerous_cases =
      FilterPair(labeled, animal, "dangerous");

  // --- Ablation 1: per-pair vs global parameters ---------------------------
  bench::PrintHeader("Ablation 1: per property-type vs global parameters");
  {
    // Fit the global model on the pooled evidence of all kept pairs.
    std::vector<EvidenceCounts> pooled;
    for (const auto& key : setup.harness.PairsAboveThreshold(100)) {
      const PropertyTypeEvidence* evidence =
          setup.harness.EvidenceFor(key.first, key.second);
      pooled.insert(pooled.end(), evidence->counts.begin(),
                    evidence->counts.end());
    }
    auto global_fit = EmLearner().Fit(pooled);
    SURVEYOR_CHECK(global_fit.ok());
    GlobalParamsClassifier global_method(global_fit->params);
    SurveyorClassifier per_pair_method;

    TextTable table({"Variant", "Coverage", "Precision", "F1",
                     "prec 'cute animal'", "prec 'dangerous animal'"});
    for (const OpinionClassifier* method :
         {static_cast<const OpinionClassifier*>(&per_pair_method),
          static_cast<const OpinionClassifier*>(&global_method)}) {
      const EvalMetrics metrics = setup.harness.Evaluate(*method, labeled);
      const EvalMetrics cute = setup.harness.Evaluate(*method, cute_cases);
      const EvalMetrics dangerous =
          setup.harness.Evaluate(*method, dangerous_cases);
      table.AddRow({method->name(), TextTable::Num(metrics.coverage()),
                    TextTable::Num(metrics.precision()),
                    TextTable::Num(metrics.f1()), TextTable::Num(cute.precision()),
                    TextTable::Num(dangerous.precision())});
    }
    table.Print(std::cout);
    std::cout << "global params fitted on pooled evidence: "
              << global_fit->params.ToString() << "\n"
              << "Statement rates vary widely across pairs; one global rate\n"
              << "underfits high-traffic pairs like 'cute animals', where a\n"
              << "few stray positive statements then look like consensus.\n";
  }

  // --- Ablations 2 and 3: negation detection / intrinsicness checks --------
  bench::PrintHeader(
      "Ablations 2-3: negation detection and intrinsicness checks");
  {
    struct Variant {
      const char* label;
      bool detect_negation;
      std::optional<bool> checks_override;
    };
    const Variant variants[] = {
        {"full (negation on, checks on)", true, std::nullopt},
        {"no negation detection", false, std::nullopt},
        {"no intrinsicness checks", true, false},
        {"neither", false, false},
    };
    TextTable table({"Variant", "Statements", "Coverage", "Precision", "F1",
                     "prec 'quiet celebrity'"});
    for (const Variant& variant : variants) {
      ExtractionOptions options;
      options.detect_negation = variant.detect_negation;
      options.intrinsic_checks_override = variant.checks_override;
      ComparisonHarness harness(&setup.world.kb(), &setup.world.lexicon(),
                                options);
      SURVEYOR_CHECK_OK(harness.Prepare(setup.corpus));
      SurveyorClassifier surveyor_method;
      const EvalMetrics metrics = harness.Evaluate(surveyor_method, labeled);
      const EvalMetrics quiet = harness.Evaluate(surveyor_method, quiet_cases);
      table.AddRow(
          {variant.label,
           StrFormat("%lld", static_cast<long long>(harness.total_statements())),
           TextTable::Num(metrics.coverage()),
           TextTable::Num(metrics.precision()), TextTable::Num(metrics.f1()),
           TextTable::Num(quiet.precision())});
    }
    table.Print(std::cout);
  }

  // --- Ablation 4: pA grid resolution ---------------------------------------
  bench::PrintHeader("Ablation 4: pA grid resolution");
  {
    struct Grid {
      const char* label;
      std::vector<double> values;
    };
    const Grid grids[] = {
        {"single value {0.8}", {0.8}},
        {"coarse {0.6,0.75,0.9}", {0.6, 0.75, 0.9}},
        {"default (10 values)", EmOptions().agreement_grid},
        {"fine (45 values)", [] {
           std::vector<double> grid;
           for (double pa = 0.51; pa < 0.995; pa += 0.011) grid.push_back(pa);
           return grid;
         }()},
    };
    TextTable table({"Grid", "Coverage", "Precision", "F1"});
    for (const Grid& grid : grids) {
      EmOptions options;
      options.agreement_grid = grid.values;
      SurveyorClassifier method(options, 0.5,
                                std::string("Surveyor/") + grid.label);
      const EvalMetrics metrics = setup.harness.Evaluate(method, labeled);
      table.AddRow({grid.label, TextTable::Num(metrics.coverage()),
                    TextTable::Num(metrics.precision()),
                    TextTable::Num(metrics.f1())});
    }
    table.Print(std::cout);
  }

  // --- Ablation 5: decision threshold ---------------------------------------
  bench::PrintHeader(
      "Ablation 5: posterior decision threshold (precision vs recall)");
  {
    TextTable table({"threshold", "Coverage", "Precision", "F1"});
    for (double threshold : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}) {
      SurveyorClassifier method({}, threshold,
                                StrFormat("Surveyor/t=%.2f", threshold));
      const EvalMetrics metrics = setup.harness.Evaluate(method, labeled);
      table.AddRow({TextTable::Num(threshold, 2),
                    TextTable::Num(metrics.coverage()),
                    TextTable::Num(metrics.precision()),
                    TextTable::Num(metrics.f1())});
    }
    table.Print(std::cout);
    std::cout << "\nRaising the threshold trades coverage for precision\n"
                 "(paper Section 3).\n";
  }
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
