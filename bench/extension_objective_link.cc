// The paper's stated future work (Section 9): connect subjective
// properties to objective ones — e.g. "find a lower bound on the
// population count of a city starting from which an average user would
// call that city big". This bench mines opinions from the synthetic
// corpus, fits a logistic link between the mined polarity and the
// objective attribute, and compares the recovered threshold against the
// latent one that generated the world.
#include <iostream>

#include "bench/bench_util.h"
#include "eval/objective_link.h"
#include "surveyor/pipeline.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

struct Scenario {
  const char* title;
  WorldConfig config;
  const char* property;
  const char* attribute;
  double latent_threshold;
  uint64_t corpus_seed;
};

void Run() {
  Scenario scenarios[] = {
      {"big cities vs population", MakeBigCityWorldConfig(461), "big",
       "population", 2.0e5, 901},
      {"wealthy countries vs GDP per capita", MakeWealthyCountryWorldConfig(),
       "wealthy", "gdp per capita", 2.0e4, 902},
      {"big lakes vs area", MakeBigLakeWorldConfig(), "big", "area", 30.0,
       903},
      {"high mountains vs relative height", MakeHighMountainWorldConfig(),
       "high", "relative height", 700.0, 904},
  };

  bench::PrintHeader(
      "Extension (paper Sec. 9): linking subjective to objective properties");
  TextTable table({"scenario", "latent threshold", "recovered threshold",
                   "slope", "fit agreement", "entities"});
  for (Scenario& scenario : scenarios) {
    GeneratorOptions generator_options;
    generator_options.author_population = 15000;
    generator_options.seed = scenario.corpus_seed;
    generator_options.exposure_exponent = 0.8;
    World world = World::Generate(scenario.config).value();
    const std::vector<RawDocument> corpus =
        CorpusGenerator(&world, generator_options).Generate();

    SurveyorConfig config;
    config.min_statements = 100;
    SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
    auto result = pipeline.Run(corpus);
    SURVEYOR_CHECK(result.ok());
    const PropertyTypeResult* pair = result->Find(0, scenario.property);
    SURVEYOR_CHECK(pair != nullptr);

    auto link = LinkObjectiveProperty(world.kb(), *pair, scenario.attribute);
    SURVEYOR_CHECK(link.ok()) << link.status();
    table.AddRow({scenario.title, TextTable::Num(scenario.latent_threshold, 0),
                  TextTable::Num(link->threshold, 0),
                  TextTable::Num(link->slope, 2),
                  TextTable::Num(link->agreement, 3),
                  StrFormat("%d", link->num_entities)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the recovered thresholds land within a small\n"
               "factor of the latent ones that generated the opinions —\n"
               "mined subjective properties can be grounded in objective\n"
               "attributes, as the paper proposes.\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::Run();
  return 0;
}
