// Reproduces the Section 7.1 deployment numbers at laptop scale: stage
// timings and data volumes of the full pipeline as the corpus grows, the
// thread-scaling of extraction (the paper's 1000 -> 5000 node story), and
// the linearity of the EM step in the number of entities (the property the
// paper credits for the 10-minute model-learning stage).
#include <iostream>

#include <thread>

#include "bench/bench_util.h"
#include "model/em.h"
#include "surveyor/mr_pipeline.h"
#include "surveyor/pipeline.h"
#include "util/string_util.h"

namespace surveyor {
namespace {

void CorpusScaleSweep() {
  bench::PrintHeader(
      "Section 7.1: pipeline stages vs corpus size (author population)");
  TextTable table({"authors", "docs", "MB", "sentences", "statements",
                   "pairs", "kept", "opinions", "extract s", "group s",
                   "EM s"});
  World world = World::Generate(MakeWebScaleWorldConfig(12, 23)).value();
  for (double authors : {1000.0, 4000.0, 16000.0}) {
    GeneratorOptions generator_options;
    generator_options.author_population = authors;
    generator_options.seed = 7100;
    const std::vector<RawDocument> corpus =
        CorpusGenerator(&world, generator_options).Generate();
    size_t bytes = 0;
    for (const RawDocument& doc : corpus) bytes += doc.text.size();

    SurveyorConfig config;
    config.min_statements = 100;
    SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
    auto result = pipeline.Run(corpus);
    SURVEYOR_CHECK(result.ok());
    const PipelineStats& stats = result->stats;
    table.AddRow({TextTable::Num(authors, 0),
                  StrFormat("%lld", static_cast<long long>(stats.num_documents)),
                  TextTable::Num(static_cast<double>(bytes) / 1e6, 1),
                  StrFormat("%lld", static_cast<long long>(stats.num_sentences)),
                  StrFormat("%lld", static_cast<long long>(stats.num_statements)),
                  StrFormat("%lld",
                            static_cast<long long>(stats.num_property_type_pairs)),
                  StrFormat("%lld", static_cast<long long>(
                                        stats.num_kept_property_type_pairs)),
                  StrFormat("%lld", static_cast<long long>(stats.num_opinions)),
                  TextTable::Num(stats.extraction_seconds, 2),
                  TextTable::Num(stats.grouping_seconds, 2),
                  TextTable::Num(stats.em_seconds, 2)});
  }
  table.Print(std::cout);
}

void ThreadScaleSweep() {
  bench::PrintHeader("Extraction thread scaling (cluster stand-in)");
  std::cout << "hardware threads on this machine: "
            << std::thread::hardware_concurrency()
            << " (speedup is bounded by physical cores; the sharding is\n"
               "embarrassingly parallel, like the paper's 1000->5000 nodes)\n\n";
  World world = World::Generate(MakeWebScaleWorldConfig(12, 23)).value();
  GeneratorOptions generator_options;
  generator_options.author_population = 8000;
  generator_options.seed = 7200;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, generator_options).Generate();
  TextTable table({"threads", "extract s", "speedup"});
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    SurveyorConfig config;
    config.num_threads = threads;
    SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
    PipelineStats stats;
    bench::Stopwatch timer;
    pipeline.ExtractEvidence(corpus, &stats);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) base = seconds;
    table.AddRow({StrFormat("%d", threads), TextTable::Num(seconds, 2),
                  TextTable::Num(base / seconds, 2)});
  }
  table.Print(std::cout);
}

void MapReduceComparison() {
  bench::PrintHeader(
      "MapReduce formulation vs sharded extraction (same output)");
  World world = World::Generate(MakeWebScaleWorldConfig(12, 23)).value();
  GeneratorOptions generator_options;
  generator_options.author_population = 8000;
  generator_options.seed = 7200;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, generator_options).Generate();

  SurveyorConfig config;
  config.min_statements = 100;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
  bench::Stopwatch timer;
  PipelineStats stats;
  EvidenceAggregator aggregator = pipeline.ExtractEvidence(corpus, &stats);
  const auto sharded = aggregator.GroupByType(world.kb(), 100);
  const double sharded_seconds = timer.ElapsedSeconds();

  timer.Reset();
  const auto mapreduced = ExtractAndGroupMapReduce(
      world.kb(), world.lexicon(), corpus, 100);
  const double mr_seconds = timer.ElapsedSeconds();

  TextTable table({"formulation", "kept pairs", "seconds"});
  table.AddRow({"thread-sharded + group", StrFormat("%zu", sharded.size()),
                TextTable::Num(sharded_seconds, 2)});
  table.AddRow({"two MapReduce jobs", StrFormat("%zu", mapreduced.size()),
                TextTable::Num(mr_seconds, 2)});
  table.Print(std::cout);
  std::cout << "Both formulations produce identical evidence groups; the MR\n"
               "expression mirrors the paper's cluster deployment (Sec 7.1).\n";
}

void EmLinearitySweep() {
  bench::PrintHeader("EM cost vs number of entities (closed-form steps)");
  TextTable table({"entities", "EM ms", "ms per 100k entities"});
  Rng rng(7300);
  for (size_t entities : {10000u, 40000u, 160000u, 640000u}) {
    std::vector<EvidenceCounts> counts(entities);
    const ModelParams truth{0.9, 50.0, 5.0};
    const PoissonRates rates = RatesFromParams(truth);
    for (auto& c : counts) {
      const bool positive = rng.Bernoulli(0.3);
      c.positive = rng.Poisson(positive ? rates.pos_given_pos : rates.pos_given_neg);
      c.negative = rng.Poisson(positive ? rates.neg_given_pos : rates.neg_given_neg);
    }
    EmOptions options;
    options.max_iterations = 20;
    options.tolerance = 0.0;  // fixed iteration count for fair scaling
    bench::Stopwatch timer;
    auto fit = EmLearner(options).Fit(counts);
    SURVEYOR_CHECK(fit.ok());
    const double ms = timer.ElapsedMillis();
    table.AddRow({StrFormat("%zu", entities), TextTable::Num(ms, 1),
                  TextTable::Num(ms / (static_cast<double>(entities) / 1e5), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: ms per 100k entities stays ~constant — EM is\n"
               "linear in the number of entities and independent of the\n"
               "number of mentions (paper Section 6).\n";
}

}  // namespace
}  // namespace surveyor

int main() {
  surveyor::CorpusScaleSweep();
  surveyor::ThreadScaleSweep();
  surveyor::MapReduceComparison();
  surveyor::EmLinearitySweep();
  return 0;
}
