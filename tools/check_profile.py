#!/usr/bin/env python3
"""Validates a folded-stack CPU profile for the profile-smoke CI job.

Usage: check_profile.py [--lenient] [--min-extraction-fraction F] <profile>

The input is flamegraph.pl "folded" output as written by
`surveyor_cli mine --profile` or GET /profilez: one
`stage;tag;frame;...;frame count` line per distinct stack, where the first
two segments are the attribution prefix the profiler prepends (pipeline
stage at sample time, innermost ProfileScope tag).

Checks:
  1. Every non-comment line parses as `stack count` with a positive
     integer count and at least the two attribution segments.
  2. The profile holds at least one sample (skipped with --lenient: a
     short /profilez window against an idle server may legitimately
     capture nothing, and renders only a `# no samples` comment).
  3. With --min-extraction-fraction F: samples whose stage segment is
     "extracting" hold at least fraction F of all samples — the
     acceptance gate that the profiler actually sees the known hot stage.
"""
import argparse
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("profile", help="folded-stack profile file")
    parser.add_argument(
        "--lenient",
        action="store_true",
        help="allow an empty profile (idle-process /profilez window)",
    )
    parser.add_argument(
        "--min-extraction-fraction",
        type=float,
        default=None,
        metavar="F",
        help="require >= F of samples in the 'extracting' stage",
    )
    args = parser.parse_args()

    total = 0
    by_stage = {}
    with open(args.profile) as f:
        for number, raw in enumerate(f, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            stack, _, count_text = line.rpartition(" ")
            if not stack or not count_text.isdigit() or int(count_text) <= 0:
                sys.exit(
                    f"FAIL: {args.profile}:{number}: not a 'stack count' "
                    f"folded line: {line!r}"
                )
            segments = stack.split(";")
            if len(segments) < 2:
                sys.exit(
                    f"FAIL: {args.profile}:{number}: stack lacks the "
                    f"'stage;tag' attribution prefix: {line!r}"
                )
            count = int(count_text)
            total += count
            by_stage[segments[0]] = by_stage.get(segments[0], 0) + count

    if total == 0:
        if args.lenient:
            print(f"OK: {args.profile} is empty but well-formed (--lenient)")
            return
        sys.exit(f"FAIL: {args.profile} holds no samples")

    breakdown = ", ".join(
        f"{stage}={count / total:.1%}"
        for stage, count in sorted(
            by_stage.items(), key=lambda item: -item[1]
        )
    )
    if args.min_extraction_fraction is not None:
        fraction = by_stage.get("extracting", 0) / total
        if fraction < args.min_extraction_fraction:
            sys.exit(
                f"FAIL: extracting stage holds {fraction:.1%} of {total} "
                f"samples, below the {args.min_extraction_fraction:.0%} "
                f"floor ({breakdown})"
            )
    print(f"OK: {args.profile}: {total} samples ({breakdown})")


if __name__ == "__main__":
    main()
