// check_hotpath: hot-path hygiene linter for annotated regions in src/.
//
//   check_hotpath [--root DIR] [--json FILE] [--baseline FILE]
//                 [--write-baseline FILE] [--audit-unused-status]
//                 [--fail-on-stale-baseline]
//
// Exit codes: 0 clean, 1 violations (or stale baseline entries with
// --fail-on-stale-baseline), 2 usage or I/O error. Violations print to
// stdout as "file:line: rule: message"; --json additionally writes a
// machine-readable report. Runs as a CTest entry (check_hotpath_src)
// with the committed baseline, so a new copy or allocation inside a
// SURVEYOR_HOT region fails the build. See DESIGN.md §13.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/check_hotpath_lib.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--json FILE] [--baseline FILE]"
               " [--write-baseline FILE] [--audit-unused-status]"
               " [--fail-on-stale-baseline]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using surveyor::hotpath::AnalyzeTree;
  using surveyor::hotpath::ApplyBaseline;
  using surveyor::hotpath::BaselineEntry;
  using surveyor::hotpath::BaselineResult;
  using surveyor::hotpath::BaselineToJson;
  using surveyor::hotpath::FormatViolations;
  using surveyor::hotpath::Options;
  using surveyor::hotpath::ParseBaselineFile;
  using surveyor::hotpath::Violation;
  using surveyor::hotpath::ViolationsToJson;

  std::string root = "src";
  std::string json_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool fail_on_stale_baseline = false;
  Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--root" && has_value) {
      root = argv[++i];
    } else if (arg == "--json" && has_value) {
      json_path = argv[++i];
    } else if (arg == "--baseline" && has_value) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && has_value) {
      write_baseline_path = argv[++i];
    } else if (arg == "--audit-unused-status") {
      options.audit_unused_status = true;
    } else if (arg == "--fail-on-stale-baseline") {
      fail_on_stale_baseline = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!std::filesystem::is_directory(root)) {
    std::cerr << "check_hotpath: root '" << root << "' is not a directory\n";
    return 2;
  }

  const std::vector<Violation> all = AnalyzeTree(root, options);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "check_hotpath: cannot write '" << write_baseline_path
                << "'\n";
      return 2;
    }
    out << BaselineToJson(all);
    std::cerr << "check_hotpath: wrote " << all.size()
              << " baseline entr(ies) to " << write_baseline_path << "\n";
    return 0;
  }

  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    std::string error;
    if (!ParseBaselineFile(baseline_path, &baseline, &error)) {
      std::cerr << "check_hotpath: " << error << "\n";
      return 2;
    }
  }
  const BaselineResult result = ApplyBaseline(all, baseline);

  std::cout << FormatViolations(result.remaining);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "check_hotpath: cannot write '" << json_path << "'\n";
      return 2;
    }
    json << ViolationsToJson(result.remaining);
  }
  for (const BaselineEntry& entry : result.stale) {
    std::cerr << "check_hotpath: stale baseline entry " << entry.file << ":"
              << entry.line << " (" << entry.rule
              << ") no longer fires; remove it\n";
  }
  std::cerr << "check_hotpath: " << result.remaining.size()
            << " violation(s) under " << root << " ("
            << all.size() - result.remaining.size() << " baselined, "
            << result.stale.size() << " stale)\n";
  if (!result.remaining.empty()) return 1;
  if (fail_on_stale_baseline && !result.stale.empty()) return 1;
  return 0;
}
