// surveyor_cli — command-line front end for the Surveyor library.
//
//   surveyor_cli worldgen <scenario> <outdir> [authors]
//       Generates a synthetic world + Web corpus and writes kb.tsv,
//       lexicon.tsv and corpus.tsv to <outdir>.
//       Scenarios: tiny, paper, bigcity, webscale.
//
//   surveyor_cli mine <dir> [--min-statements N] [--threshold T]
//                     [--domain D] [--out FILE] [--provenance N]
//                     [--report FILE] [--admin-port N] [--faults SPEC]
//                     [--fault-seed N] [--profile FILE]
//       Runs the full pipeline over <dir>/corpus.tsv with <dir>/kb.tsv and
//       <dir>/lexicon.tsv; writes the mined opinions (default
//       <dir>/opinions.tsv). With --snapshot FILE, also freezes them into
//       a binary opinion snapshot `serve --snapshot` can answer queries
//       from. Without --domain the corpus is streamed from
//       disk with corrupt lines quarantined (counted, not fatal); with
//       --domain it is loaded and filtered in memory. With --provenance
//       N, also writes up to N supporting document references per pair to
//       <dir>/provenance.tsv. With --report FILE, writes the JSON run
//       report (metrics, tracing spans, EM diagnostics, degradation
//       accounting; see DESIGN.md §7 and §9) to FILE. With --admin-port N
//       (0 = off, the default), serves the live admin plane on
//       127.0.0.1:N for the duration of the run: /metrics, /metrics.json,
//       /healthz, /readyz, /statusz, /logz. With --faults SPEC (or the
//       SURVEYOR_FAULTS env var), arms fault injection for a chaos run,
//       e.g. --faults doc_read:0.01,em_fit:@3 (DESIGN.md §9). With
//       --profile FILE (or the SURVEYOR_PROFILE env var), samples the
//       run's CPU at 97 Hz, writes flamegraph.pl-ready folded stacks to
//       FILE, and prints the per-stage attribution table (DESIGN.md §12).
//
//   surveyor_cli serve <dir> [mine flags] [--admin-port N]
//   surveyor_cli serve --snapshot FILE [--admin-port N]
//                      [--trace-sample-rate R] [--slow-query-ms MS]
//   surveyor_cli serve --generations DIR [--retain N] [--admin-port N]
//                      [--trace-sample-rate R] [--slow-query-ms MS]
//       First form: mines like `mine`, writes an opinion snapshot
//       (--snapshot FILE, default <dir>/opinions.surv) and keeps the
//       process alive answering subjective queries over HTTP:
//       /query?entity=E&property=P, /query?type=T&property=P,
//       /query?prefix=S and POST /query/batch, next to the admin
//       endpoints. Second form: skips mining and serves an existing
//       snapshot directly. Third form: serves the newest committed
//       generation of a crash-safe generation store (see `mine
//       --publish`); POST /reloadz (optionally ?generation=N for a
//       rollback) or SIGHUP hot-swaps generations without dropping a
//       query, and /statusz grows a "generation" section (DESIGN.md
//       §14). Admin port defaults to 8080 for serve.
//       Every request gets a trace id; a fraction (--trace-sample-rate,
//       default 0.01) plus everything slower than --slow-query-ms
//       (default 250) keeps its span tree on /tracez, and /requestz shows
//       the recent access log (DESIGN.md §11). With --publish DIR, mine
//       commits the snapshot as the next generation of DIR's store
//       (keeping --retain N generations, default 4).
//
//   surveyor_cli query <dir> <type> <property> [limit]
//       Answers a subjective query ("city big") from mined opinions.
//
//   surveyor_cli profile <dir> <entity>
//       Prints every mined property of an entity.
//
//   surveyor_cli repl <dir>
//       Interactive subjective search: "<type> <property>" queries,
//       "profile <entity>", "quit".
//
//   surveyor_cli score <dir>
//       Scores <dir>/opinions.tsv against the simulator's oracle
//       (<dir>/truth.tsv): coverage, precision and F1 per type and
//       overall.
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "corpus/world_io.h"
#include "kb/kb_io.h"
#include "obs/admin_server.h"
#include "obs/log_ring.h"
#include "obs/profiler.h"
#include "obs/resource_sampler.h"
#include "obs/stage.h"
#include "serving/generation_store.h"
#include "serving/opinion_index.h"
#include "serving/query_service.h"
#include "serving/reload_service.h"
#include "serving/snapshot.h"
#include "surveyor/opinion_store.h"
#include "surveyor/pipeline.h"
#include "text/lexicon_io.h"
#include "util/string_util.h"
#include "util/table.h"

namespace surveyor {
namespace {

int Usage() {
  std::cerr
      << "usage:\n"
      << "  surveyor_cli worldgen <tiny|paper|bigcity|webscale> <outdir> "
         "[authors]\n"
      << "  surveyor_cli mine <dir> [--min-statements N] [--threshold T]"
         " [--domain D] [--out FILE] [--provenance N] [--report FILE]"
         " [--snapshot FILE] [--publish DIR] [--retain N] [--admin-port N]"
         " [--faults SPEC] [--fault-seed N] [--profile FILE]\n"
      << "  surveyor_cli serve <dir> [mine flags] [--admin-port N]"
         " [serving knobs]\n"
      << "  surveyor_cli serve --snapshot FILE [--admin-port N]"
         " [--trace-sample-rate R] [--slow-query-ms MS] [serving knobs]\n"
      << "  surveyor_cli serve --generations DIR [--retain N]"
         " [--admin-port N] [--trace-sample-rate R] [--slow-query-ms MS]"
         " [serving knobs]\n"
      << "  (serving knobs: --serve-workers N --max-connections N"
         " --queue-high-water N)\n"
      << "  surveyor_cli query <dir> <type> <property> [limit]\n"
      << "  surveyor_cli profile <dir> <entity>\n"
      << "  surveyor_cli repl <dir>\n"
      << "  surveyor_cli score <dir>\n";
  return 2;
}

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

/// Set by the SIGHUP handler; drained by the serving park loop. The
/// handler only flips the flag — everything else (manifest refresh,
/// snapshot load, the atomic swap) runs on the main thread.
volatile std::sig_atomic_t g_sighup_pending = 0;

void OnSigHup(int) { g_sighup_pending = 1; }

/// Parks a serving process forever, draining SIGHUP into `on_sighup`
/// (a generation reload). The sleep is short so a signal is acted on
/// promptly even though the handler itself does nothing.
[[noreturn]] void ParkServing(const std::function<void()>& on_sighup) {
  std::signal(SIGHUP, OnSigHup);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (g_sighup_pending != 0) {
      g_sighup_pending = 0;
      on_sighup();
    }
  }
}

/// Commands that take only positional arguments reject anything that looks
/// like a flag instead of silently ignoring it.
bool HasUnknownFlag(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag '" << arg << "'\n";
      return true;
    }
  }
  return false;
}

StatusOr<WorldConfig> ScenarioConfig(const std::string& name) {
  if (name == "tiny") return MakeTinyWorldConfig();
  if (name == "paper") return MakePaperWorldConfig();
  if (name == "bigcity") return MakeBigCityWorldConfig();
  if (name == "webscale") return MakeWebScaleWorldConfig();
  return Status::InvalidArgument("unknown scenario '" + name + "'");
}

int RunWorldgen(const std::vector<std::string>& args) {
  if (HasUnknownFlag(args)) return Usage();
  if (args.size() < 2) return Usage();
  auto config = ScenarioConfig(args[0]);
  if (!config.ok()) return Fail(config.status());
  const std::string outdir = args[1];

  auto world = World::Generate(*config);
  if (!world.ok()) return Fail(world.status());

  GeneratorOptions options;
  options.author_population = args.size() > 2 ? std::atof(args[2].c_str())
                                              : 2000.0;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&*world, options).Generate();

  Status status = SaveKnowledgeBaseToFile(world->kb(), outdir + "/kb.tsv");
  if (!status.ok()) return Fail(status);
  status = SaveLexiconToFile(world->lexicon(), outdir + "/lexicon.tsv");
  if (!status.ok()) return Fail(status);
  status = SaveCorpusToFile(corpus, outdir + "/corpus.tsv");
  if (!status.ok()) return Fail(status);
  // The simulator's oracle, for scoring mined opinions externally.
  status = SaveGroundTruthToFile(*world, outdir + "/truth.tsv");
  if (!status.ok()) return Fail(status);

  std::cout << "wrote " << outdir << "/{kb,lexicon,corpus,truth}.tsv: "
            << world->kb().num_entities() << " entities, " << corpus.size()
            << " documents\n";
  return 0;
}

struct LoadedWorkspace {
  KnowledgeBase kb;
  Lexicon lexicon;
};

StatusOr<LoadedWorkspace> LoadWorkspace(const std::string& dir) {
  LoadedWorkspace ws;
  SURVEYOR_ASSIGN_OR_RETURN(ws.kb, LoadKnowledgeBaseFromFile(dir + "/kb.tsv"));
  SURVEYOR_ASSIGN_OR_RETURN(ws.lexicon,
                            LoadLexiconFromFile(dir + "/lexicon.tsv"));
  return ws;
}

/// `serve --snapshot FILE` / `serve --generations DIR`: no mining — load
/// a frozen opinion snapshot (or the newest committed generation of a
/// GenerationStore) and answer /query until stopped. The readiness gate
/// stays closed (503) from bind until the index finishes loading, so a
/// scraper that races the startup never reads from a half-built index.
/// In generations mode POST /reloadz (or SIGHUP) hot-swaps to the newest
/// generation — the serve side of the mine -> publish -> serve ->
/// re-mine -> reload loop; SIGHUP in snapshot mode re-loads the same
/// file.
int RunServeSnapshot(const std::vector<std::string>& args) {
  std::string snapshot_path;
  std::string generations_dir;
  size_t retain = 4;
  int admin_port = 8080;
  double trace_sample_rate = 0.01;
  double slow_query_ms = 250.0;
  obs::AdminServerOptions admin_options;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag != "--snapshot" && flag != "--generations" &&
        flag != "--retain" && flag != "--admin-port" &&
        flag != "--trace-sample-rate" && flag != "--slow-query-ms" &&
        flag != "--serve-workers" && flag != "--max-connections" &&
        flag != "--queue-high-water") {
      std::cerr << "unknown flag '" << flag << "'\n";
      return Usage();
    }
    if (i + 1 >= args.size()) {
      std::cerr << "flag '" << flag << "' requires a value\n";
      return Usage();
    }
    const std::string& value = args[++i];
    if (flag == "--snapshot") {
      snapshot_path = value;
    } else if (flag == "--generations") {
      generations_dir = value;
    } else if (flag == "--retain") {
      retain = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (flag == "--trace-sample-rate") {
      trace_sample_rate = std::atof(value.c_str());
    } else if (flag == "--slow-query-ms") {
      slow_query_ms = std::atof(value.c_str());
    } else if (flag == "--serve-workers") {
      admin_options.serve_workers = std::atoi(value.c_str());
    } else if (flag == "--max-connections") {
      admin_options.max_connections =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (flag == "--queue-high-water") {
      admin_options.queue_high_water =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else {
      admin_port = std::atoi(value.c_str());
    }
  }
  if (snapshot_path.empty() == generations_dir.empty()) {
    std::cerr << "serve needs exactly one of --snapshot or --generations\n";
    return Usage();
  }
  if (!(trace_sample_rate >= 0.0 && trace_sample_rate <= 1.0)) {
    return Fail(Status::InvalidArgument(
        "trace_sample_rate must be in [0, 1] (0 = head sampling off)"));
  }
  if (!(slow_query_ms >= 0.0)) {
    return Fail(Status::InvalidArgument(
        "slow_query_ms must be >= 0 (0 = tail capture off)"));
  }
  if (retain == 0) {
    return Fail(Status::InvalidArgument("retain must be >= 1"));
  }
  if (admin_options.serve_workers < 1) {
    return Fail(Status::InvalidArgument("serve_workers must be >= 1"));
  }
  if (admin_options.max_connections < 1 ||
      admin_options.queue_high_water < 1) {
    return Fail(Status::InvalidArgument(
        "max_connections and queue_high_water must be >= 1"));
  }

  obs::LogRing::InstallGlobalTee();
  obs::MetricRegistry registry;
  obs::StageTracker stage_tracker;
  obs::ResourceSampler sampler(&registry);
  serving::OpinionIndexOptions index_options;
  index_options.metrics = &registry;
  serving::OpinionIndex index(index_options);
  serving::QueryService query_service(&index, &stage_tracker, &registry);
  admin_options.port = admin_port;
  admin_options.trace_sample_rate = trace_sample_rate;
  admin_options.slow_query_ms = slow_query_ms;
  admin_options.profiler_metrics = &registry;
  obs::AdminServer admin(&registry, &stage_tracker, &obs::LogRing::Global(),
                         admin_options);
  query_service.Register(&admin);

  std::unique_ptr<serving::GenerationStore> store;
  std::unique_ptr<serving::ReloadService> reload;
  if (!generations_dir.empty()) {
    serving::GenerationStoreOptions store_options;
    store_options.retain = retain;
    store_options.metrics = &registry;
    store = std::make_unique<serving::GenerationStore>(generations_dir,
                                                       store_options);
    const Status opened = store->Open();
    if (!opened.ok()) return Fail(opened);
    reload = std::make_unique<serving::ReloadService>(store.get(), &index,
                                                      &registry);
    reload->Register(&admin);
  }
  const Status started = admin.Start();
  if (!started.ok()) return Fail(started);

  if (store != nullptr) {
    if (store->latest() != 0) {
      const Status loaded = reload->ReloadLatest();
      if (!loaded.ok()) return Fail(loaded);
      stage_tracker.SetStage(obs::PipelineStage::kServing);
      std::cout << "serving generation " << index.generation_id() << " ("
                << index.generation()->snapshot().num_opinions()
                << " opinions) from " << generations_dir
                << " on http://127.0.0.1:" << admin.port()
                << " — POST /reloadz or SIGHUP to hot-swap (Ctrl-C to "
                   "stop)\n";
    } else {
      // An empty store is a valid start: /query answers 503 until the
      // first publish lands and /reloadz (or SIGHUP) swaps it in.
      std::cout << "no generations in " << generations_dir
                << " yet; waiting on http://127.0.0.1:" << admin.port()
                << " — publish one and POST /reloadz (Ctrl-C to stop)\n";
    }
    ParkServing([&] {
      const Status reloaded = reload->ReloadLatest();
      if (!reloaded.ok()) {
        std::cerr << "SIGHUP reload failed: " << reloaded.ToString() << "\n";
      } else if (index.loaded()) {
        stage_tracker.SetStage(obs::PipelineStage::kServing);
      }
    });
  }

  const Status loaded = index.Load(snapshot_path);
  if (!loaded.ok()) return Fail(loaded);
  stage_tracker.SetStage(obs::PipelineStage::kServing);
  std::cout << "serving " << index.generation()->snapshot().num_opinions()
            << " opinions from " << snapshot_path << " on http://127.0.0.1:"
            << admin.port()
            << " — /query?entity=E&property=P (Ctrl-C to stop)\n";
  ParkServing([&] {
    const Status reloaded = index.Load(snapshot_path);
    if (!reloaded.ok()) {
      std::cerr << "SIGHUP reload failed: " << reloaded.ToString() << "\n";
    }
  });
}

/// Shared implementation of `mine` and `serve` (serve = mine, write a
/// snapshot, then stay alive answering /query with the admin plane up).
int RunMine(const std::vector<std::string>& args, bool serve) {
  if (args.empty()) return Usage();
  if (serve && args[0].rfind("--", 0) == 0) return RunServeSnapshot(args);
  const std::string dir = args[0];
  SurveyorConfig config;
  std::string domain;
  std::string out = dir + "/opinions.tsv";
  std::string report_path;
  std::string snapshot_path;
  std::string publish_dir;
  size_t publish_retain = 4;
  std::string profile_path;
  // serve without an admin plane would just be a parked process, so it
  // defaults to the conventional local admin port; mine defaults to off.
  int admin_port = serve ? 8080 : 0;
  bool admin_enabled = serve;
  // Event-loop shape of the admin/serving tier; defaults from the struct.
  obs::AdminServerOptions serving_shape;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const bool known = flag == "--min-statements" || flag == "--threshold" ||
                       flag == "--domain" || flag == "--out" ||
                       flag == "--provenance" || flag == "--report" ||
                       flag == "--snapshot" || flag == "--publish" ||
                       flag == "--retain" || flag == "--admin-port" ||
                       flag == "--faults" || flag == "--fault-seed" ||
                       flag == "--trace-sample-rate" ||
                       flag == "--slow-query-ms" || flag == "--profile" ||
                       flag == "--serve-workers" ||
                       flag == "--max-connections" ||
                       flag == "--queue-high-water";
    if (!known) {
      std::cerr << "unknown flag '" << flag << "'\n";
      return Usage();
    }
    if (i + 1 >= args.size()) {
      std::cerr << "flag '" << flag << "' requires a value\n";
      return Usage();
    }
    const std::string& value = args[++i];
    if (flag == "--min-statements") {
      config.min_statements = std::atoll(value.c_str());
    } else if (flag == "--threshold") {
      config.decision_threshold = std::atof(value.c_str());
    } else if (flag == "--domain") {
      domain = value;
    } else if (flag == "--out") {
      out = value;
    } else if (flag == "--provenance") {
      config.max_provenance_samples = std::atoi(value.c_str());
    } else if (flag == "--snapshot") {
      snapshot_path = value;
    } else if (flag == "--publish") {
      publish_dir = value;
    } else if (flag == "--retain") {
      publish_retain = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (flag == "--admin-port") {
      admin_port = std::atoi(value.c_str());
      // 0 disables for mine; serve binds an ephemeral port instead of
      // running headless.
      admin_enabled = serve || admin_port != 0;
    } else if (flag == "--faults") {
      config.fault_spec = value;
    } else if (flag == "--fault-seed") {
      config.fault_seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (flag == "--trace-sample-rate") {
      config.trace_sample_rate = std::atof(value.c_str());
    } else if (flag == "--slow-query-ms") {
      config.slow_query_ms = std::atof(value.c_str());
    } else if (flag == "--serve-workers") {
      serving_shape.serve_workers = std::atoi(value.c_str());
    } else if (flag == "--max-connections") {
      serving_shape.max_connections =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (flag == "--queue-high-water") {
      serving_shape.queue_high_water =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (flag == "--profile") {
      profile_path = value;
    } else {
      report_path = value;
    }
  }
  // The env var mirrors the flag so wrappers (CI, scripts) can profile
  // without touching the command line — same pattern as SURVEYOR_FAULTS.
  if (profile_path.empty()) {
    if (const char* env = std::getenv("SURVEYOR_PROFILE")) profile_path = env;
  }
  // Fail fast on a bad configuration: the pipeline validates again before
  // running, but the admin plane (whose tracer options come from the same
  // config) starts first.
  const Status config_status = config.Validate();
  if (!config_status.ok()) return Fail(config_status);
  if (serving_shape.serve_workers < 1) {
    return Fail(Status::InvalidArgument("serve_workers must be >= 1"));
  }
  if (serving_shape.max_connections < 1 ||
      serving_shape.queue_high_water < 1) {
    return Fail(Status::InvalidArgument(
        "max_connections and queue_high_water must be >= 1"));
  }

  // The admin plane: a live registry + readiness machine the pipeline
  // writes into, an OS resource sampler, the process log ring, and the
  // HTTP server that serves all three while the run is in flight.
  obs::MetricRegistry live_registry;
  obs::StageTracker stage_tracker;
  std::unique_ptr<obs::ResourceSampler> sampler;
  std::unique_ptr<obs::AdminServer> admin;
  // The query path: serve mounts /query on the admin server before it
  // starts (handlers cannot be added to a live server); the index stays
  // empty — and the endpoint 503s via the readiness gate — until mining
  // finishes and the freshly written snapshot is loaded below.
  serving::OpinionIndexOptions index_options;
  index_options.metrics = &live_registry;
  serving::OpinionIndex index(index_options);
  serving::QueryService query_service(&index, &stage_tracker, &live_registry);
  if (admin_enabled) {
    obs::LogRing::InstallGlobalTee();
    config.live_metrics = &live_registry;
    config.stage_tracker = &stage_tracker;
    sampler = std::make_unique<obs::ResourceSampler>(&live_registry);
    obs::AdminServerOptions admin_options = serving_shape;
    admin_options.port = admin_port;
    admin_options.trace_sample_rate = config.trace_sample_rate;
    admin_options.slow_query_ms = config.slow_query_ms;
    admin_options.profiler_metrics = &live_registry;
    admin = std::make_unique<obs::AdminServer>(
        &live_registry, &stage_tracker, &obs::LogRing::Global(),
        admin_options);
    if (serve) query_service.Register(admin.get());
    const Status started = admin->Start();
    if (!started.ok()) return Fail(started);
    std::cout << "admin plane on http://127.0.0.1:" << admin->port()
              << " (/metrics /healthz /readyz /statusz /logz /tracez"
              << " /requestz)\n";
  }

  auto workspace = LoadWorkspace(dir);
  if (!workspace.ok()) return Fail(workspace.status());

  // Arm the sampling profiler around the mining run only (not workspace
  // loading), so the folded stacks answer "where do mining cycles go".
  // Stage attribution needs the tracker wired into the pipeline even when
  // no admin plane is up.
  obs::Profiler& profiler = obs::Profiler::Global();
  if (!profile_path.empty()) {
    config.stage_tracker = &stage_tracker;
    obs::ProfilerOptions profiler_options;
    profiler_options.stage_tracker = &stage_tracker;
    profiler_options.metrics = &live_registry;
    const Status profiling = profiler.Start(profiler_options);
    if (!profiling.ok()) return Fail(profiling);
  }

  SurveyorPipeline pipeline(&workspace->kb, &workspace->lexicon, config);
  StatusOr<PipelineResult> result = [&]() -> StatusOr<PipelineResult> {
    if (domain.empty()) {
      // Stream the corpus from disk — the snapshot posture: corrupt lines
      // are quarantined and counted instead of failing the run, and the
      // file never needs to fit in memory.
      FileDocumentSourceOptions source_options;
      source_options.quarantine_corrupt = true;
      FileDocumentSource source(dir + "/corpus.tsv", source_options);
      SURVEYOR_RETURN_IF_ERROR(source.status());
      return pipeline.RunStreaming(source);
    }
    // Domain filtering needs the documents in hand; load and filter.
    SURVEYOR_ASSIGN_OR_RETURN(const std::vector<RawDocument> corpus,
                              LoadCorpusFromFile(dir + "/corpus.tsv"));
    return pipeline.Run(FilterByDomain(corpus, domain));
  }();

  if (!profile_path.empty()) {
    StatusOr<obs::ProfileResult> profile = profiler.Stop();
    if (!profile.ok()) return Fail(profile.status());
    std::ofstream folded(profile_path);
    if (!folded) {
      return Fail(Status::NotFound("cannot write " + profile_path));
    }
    folded << profile->ToFolded();
    std::cout << StrFormat(
        "wrote CPU profile to %s (%lld samples at %.0f Hz, %lld dropped)\n",
        profile_path.c_str(), static_cast<long long>(profile->samples),
        profile->frequency_hz, static_cast<long long>(profile->dropped));
    for (const obs::StageAttribution& row : profile->stages) {
      std::cout << StrFormat("  %5.1f%%  stage=%s tag=%s (%lld samples)\n",
                             100.0 * row.fraction, row.stage.c_str(),
                             row.tag.c_str(),
                             static_cast<long long>(row.samples));
    }
  }

  if (!result.ok()) return Fail(result.status());

  OpinionStore store(&workspace->kb);
  store.AddAll(*result);
  Status status = store.SaveToFile(out);
  if (!status.ok()) return Fail(status);

  // Freeze the mined opinions into the binary snapshot the serving layer
  // reads. serve always writes one (it is what /query answers from);
  // mine writes one only when asked via --snapshot. With --publish DIR
  // the same image is committed as the next generation of a
  // GenerationStore — the crash-safe hand-off a running `serve
  // --generations` picks up via /reloadz or SIGHUP.
  if (serve && snapshot_path.empty()) snapshot_path = dir + "/opinions.surv";
  if (!snapshot_path.empty() || !publish_dir.empty()) {
    serving::SnapshotWriter writer;
    writer.set_label("mine " + dir);
    status = writer.AddResult(*result, workspace->kb);
    if (!status.ok()) return Fail(status);
    if (!snapshot_path.empty()) {
      status = writer.WriteToFile(snapshot_path);
      if (!status.ok()) return Fail(status);
      std::cout << "wrote opinion snapshot to " << snapshot_path << "\n";
    }
    if (!publish_dir.empty()) {
      if (publish_retain == 0) {
        return Fail(Status::InvalidArgument("retain must be >= 1"));
      }
      serving::GenerationStoreOptions store_options;
      store_options.retain = publish_retain;
      if (admin_enabled) store_options.metrics = &live_registry;
      serving::GenerationStore store(publish_dir, store_options);
      status = store.Open();
      if (!status.ok()) return Fail(status);
      StatusOr<uint64_t> published = store.PublishImage(writer.Serialize());
      if (!published.ok()) return Fail(published.status());
      std::cout << "published generation " << *published << " to "
                << publish_dir << "\n";
    }
  }

  if (config.max_provenance_samples > 0) {
    std::ofstream prov(dir + "/provenance.tsv");
    if (!prov) return Fail(Status::NotFound("cannot write provenance.tsv"));
    prov << "# entity <tab> property <tab> doc_id:sentence:polarity ...\n";
    for (const auto& [key, refs] : result->provenance) {
      prov << workspace->kb.entity(key.first).canonical_name << "\t"
           << key.second;
      for (const StatementRef& ref : refs) {
        prov << "\t" << ref.doc_id << ":" << ref.sentence_index << ":"
             << (ref.positive ? "+" : "-");
      }
      prov << "\n";
    }
  }

  if (!report_path.empty()) {
    std::ofstream report_file(report_path);
    if (!report_file) {
      return Fail(Status::NotFound("cannot write " + report_path));
    }
    result->report.label = "mine " + dir;
    report_file << result->report.ToJson() << "\n";
    std::cout << "wrote run report to " << report_path << "\n";
  }

  const PipelineStats& stats = result->stats;
  std::cout << StrFormat(
      "mined %lld opinions from %lld documents (%lld statements, "
      "%lld/%lld property-type pairs kept) -> %s\n",
      static_cast<long long>(stats.num_opinions),
      static_cast<long long>(stats.num_documents),
      static_cast<long long>(stats.num_statements),
      static_cast<long long>(stats.num_kept_property_type_pairs),
      static_cast<long long>(stats.num_property_type_pairs), out.c_str());

  const obs::DegradationReport& degradation = result->report.degradation;
  if (degradation.degraded) {
    std::cout << StrFormat(
        "run degraded: %lld docs quarantined, %lld pairs on the "
        "majority-vote fallback, %lld retries, %lld faults injected\n",
        static_cast<long long>(degradation.docs_quarantined),
        static_cast<long long>(degradation.pairs_degraded),
        static_cast<long long>(degradation.retries),
        static_cast<long long>(degradation.faults_injected));
    for (const obs::DegradedPairInfo& pair : degradation.degraded_pairs) {
      std::cout << "  degraded pair: " << pair.type_name << " "
                << pair.property << " (" << pair.reason << ")\n";
    }
    for (const std::string& note : degradation.notes) {
      std::cout << "  " << note << "\n";
    }
  }

  if (serve) {
    // Park the process answering queries: load the snapshot just written
    // into the query index, then flip readiness to "serving" — only now
    // does /query stop returning 503. The final counters and stage
    // history stay scrapeable, and the mined store size is exported as a
    // gauge.
    status = index.Load(snapshot_path);
    if (!status.ok()) return Fail(status);
    stage_tracker.SetStage(obs::PipelineStage::kServing);
    obs::Gauge* store_size =
        live_registry.GetGauge("surveyor_opinion_store_size");
    live_registry.SetHelp("surveyor_opinion_store_size",
                          "Mined opinions held by the serving process.");
    store_size->Set(static_cast<double>(store.size()));
    std::cout << "serving; http://127.0.0.1:" << admin->port()
              << "/query?entity=E&property=P and /metrics (Ctrl-C to stop)\n";
    ParkServing([&] {
      const Status reloaded = index.Load(snapshot_path);
      if (!reloaded.ok()) {
        std::cerr << "SIGHUP reload failed: " << reloaded.ToString() << "\n";
      }
    });
  }
  return 0;
}

StatusOr<OpinionStore> LoadOpinions(const LoadedWorkspace& workspace,
                                    const std::string& dir) {
  OpinionStore store(&workspace.kb);
  SURVEYOR_RETURN_IF_ERROR(store.LoadFromFile(dir + "/opinions.tsv"));
  return store;
}

int RunQuery(const std::vector<std::string>& args) {
  if (HasUnknownFlag(args)) return Usage();
  if (args.size() < 3) return Usage();
  auto workspace = LoadWorkspace(args[0]);
  if (!workspace.ok()) return Fail(workspace.status());
  auto store = LoadOpinions(*workspace, args[0]);
  if (!store.ok()) return Fail(store.status());
  auto type = workspace->kb.TypeByName(args[1]);
  if (!type.ok()) return Fail(type.status());
  const size_t limit = args.size() > 3
                           ? static_cast<size_t>(std::atoll(args[3].c_str()))
                           : 15;

  TextTable table({args[2] + " " + Lexicon::Pluralize(args[1]),
                   "probability"});
  for (const PairOpinion& opinion : store->Query(*type, args[2], limit)) {
    table.AddRow({workspace->kb.entity(opinion.entity).canonical_name,
                  TextTable::Num(opinion.probability, 3)});
  }
  table.Print(std::cout);
  return 0;
}

int RunProfile(const std::vector<std::string>& args) {
  if (HasUnknownFlag(args)) return Usage();
  if (args.size() < 2) return Usage();
  auto workspace = LoadWorkspace(args[0]);
  if (!workspace.ok()) return Fail(workspace.status());
  auto store = LoadOpinions(*workspace, args[0]);
  if (!store.ok()) return Fail(store.status());
  const std::vector<EntityId> ids = workspace->kb.EntitiesByName(args[1]);
  if (ids.empty()) {
    return Fail(Status::NotFound("unknown entity '" + args[1] + "'"));
  }

  for (EntityId id : ids) {
    const Entity& entity = workspace->kb.entity(id);
    std::cout << entity.canonical_name << " ("
              << workspace->kb.TypeName(entity.most_notable_type) << ")\n";
    TextTable table({"property", "polarity", "probability"});
    for (const PairOpinion& opinion : store->PropertiesOf(id)) {
      table.AddRow({opinion.property,
                    std::string(PolarityName(opinion.polarity)),
                    TextTable::Num(opinion.probability, 3)});
    }
    table.Print(std::cout);
  }
  return 0;
}

int RunRepl(const std::vector<std::string>& args) {
  if (HasUnknownFlag(args)) return Usage();
  if (args.empty()) return Usage();
  auto workspace = LoadWorkspace(args[0]);
  if (!workspace.ok()) return Fail(workspace.status());
  auto store = LoadOpinions(*workspace, args[0]);
  if (!store.ok()) return Fail(store.status());

  std::cout << "subjective search over " << store->size()
            << " mined opinions. Try \"city big\" or \"profile <entity>\"; "
               "\"quit\" exits.\n";
  std::string line;
  while (std::cout << "> " && std::getline(std::cin, line)) {
    const std::vector<std::string> words = SplitWhitespace(line);
    if (words.empty()) continue;
    if (words[0] == "quit" || words[0] == "exit") break;
    if (words[0] == "profile" && words.size() >= 2) {
      std::string name = words[1];
      for (size_t w = 2; w < words.size(); ++w) name += " " + words[w];
      const std::vector<EntityId> ids = workspace->kb.EntitiesByName(name);
      if (ids.empty()) {
        std::cout << "unknown entity '" << name << "'\n";
        continue;
      }
      for (const PairOpinion& opinion : store->PropertiesOf(ids[0])) {
        std::cout << "  " << PolarityName(opinion.polarity) << " "
                  << opinion.property << " ("
                  << TextTable::Num(opinion.probability, 3) << ")\n";
      }
      continue;
    }
    if (words.size() >= 2) {
      auto type = workspace->kb.TypeByName(words[0]);
      if (!type.ok()) {
        std::cout << "unknown type '" << words[0] << "'\n";
        continue;
      }
      const auto results = store->Query(*type, words[1], 10);
      if (results.empty()) {
        std::cout << "no " << words[1] << " " << Lexicon::Pluralize(words[0])
                  << " found\n";
      }
      for (const PairOpinion& opinion : results) {
        std::cout << "  "
                  << workspace->kb.entity(opinion.entity).canonical_name
                  << " (" << TextTable::Num(opinion.probability, 3) << ")\n";
      }
      continue;
    }
    std::cout << "usage: <type> <property> | profile <entity> | quit\n";
  }
  return 0;
}

int RunScore(const std::vector<std::string>& args) {
  if (HasUnknownFlag(args)) return Usage();
  if (args.empty()) return Usage();
  auto workspace = LoadWorkspace(args[0]);
  if (!workspace.ok()) return Fail(workspace.status());
  auto store = LoadOpinions(*workspace, args[0]);
  if (!store.ok()) return Fail(store.status());
  auto truth =
      LoadGroundTruthFromFile(args[0] + "/truth.tsv", workspace->kb);
  if (!truth.ok()) return Fail(truth.status());

  // Per-type tallies plus an overall row.
  struct Tally {
    int64_t total = 0;
    int64_t solved = 0;
    int64_t correct = 0;
  };
  std::map<TypeId, Tally> per_type;
  Tally overall;
  for (const auto& [key, polarity] : *truth) {
    const TypeId type = workspace->kb.entity(key.first).most_notable_type;
    Tally& tally = per_type[type];
    ++tally.total;
    ++overall.total;
    auto mined = store->Lookup(key.first, key.second);
    if (!mined.ok()) continue;
    ++tally.solved;
    ++overall.solved;
    if (mined->polarity == polarity) {
      ++tally.correct;
      ++overall.correct;
    }
  }

  TextTable table({"type", "cases", "coverage", "precision", "F1"});
  auto add_row = [&](const std::string& label, const Tally& tally) {
    const double coverage =
        tally.total > 0 ? static_cast<double>(tally.solved) / tally.total : 0;
    const double precision =
        tally.solved > 0 ? static_cast<double>(tally.correct) / tally.solved
                         : 0;
    const double f1 = (coverage + precision) > 0
                          ? 2 * coverage * precision / (coverage + precision)
                          : 0;
    table.AddRow({label, StrFormat("%lld", (long long)tally.total),
                  TextTable::Num(coverage), TextTable::Num(precision),
                  TextTable::Num(f1)});
  };
  for (const auto& [type, tally] : per_type) {
    add_row(workspace->kb.TypeName(type), tally);
  }
  add_row("OVERALL", overall);
  table.Print(std::cout);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "worldgen") return RunWorldgen(args);
  if (command == "mine") return RunMine(args, /*serve=*/false);
  if (command == "serve") return RunMine(args, /*serve=*/true);
  if (command == "query") return RunQuery(args);
  if (command == "profile") return RunProfile(args);
  if (command == "repl") return RunRepl(args);
  if (command == "score") return RunScore(args);
  return Usage();
}

}  // namespace
}  // namespace surveyor

int main(int argc, char** argv) { return surveyor::Main(argc, argv); }
