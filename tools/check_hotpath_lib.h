#ifndef SURVEYOR_TOOLS_CHECK_HOTPATH_LIB_H_
#define SURVEYOR_TOOLS_CHECK_HOTPATH_LIB_H_

// Hot-path hygiene analyzer over a source tree (standard library only,
// like check_layers, so it builds before anything else and can gate the
// build). It lexes C++ sources — stripping comments, string and char
// literals — finds the annotated hot regions (src/util/hotpath.h), and
// enforces per-region rules:
//
//   no-heap-alloc    `new`, make_unique/make_shared, push_back or
//                    emplace_back on a name never `reserve`d in the
//                    region, and std::string/std::vector locals declared
//                    without a reserve.
//   no-string-copy   by-value std::string parameters and std::string
//                    locals copy-initialized from an expression
//                    (suggests std::string_view).
//   no-lock          MutexLock / lock_guard / unique_lock / scoped_lock
//                    construction or .Lock()/.lock() calls.
//   no-io-log        SURVEYOR_LOG, iostream writes, printf-family and
//                    stdio/fstream I/O.
//   region           malformed annotations (END without BEGIN,
//                    unterminated BEGIN).
//   unused-status    (audit mode) a bare statement discarding the result
//                    of a function the tree declares as returning
//                    util::Status / StatusOr.
//
// Findings are suppressed per line with `// NOLINT_HOTPATH(rule)` or
// `// NOLINTNEXTLINE_HOTPATH(rule)` (tools/lint_util.h), or
// grandfathered in a committed JSON baseline. See DESIGN.md §13.

#include <string>
#include <vector>

namespace surveyor {
namespace hotpath {

/// One analyzer finding, pointing at a file line.
struct Violation {
  std::string file;  ///< path relative to the analyzed root
  int line = 0;      ///< 1-based
  std::string rule;  ///< rule name, see header comment
  std::string message;

  bool operator==(const Violation& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

struct Options {
  /// Also run the repo-wide unused-status audit (not region-limited).
  bool audit_unused_status = false;
};

/// One grandfathered finding; matches a Violation on (file, line, rule).
struct BaselineEntry {
  std::string file;
  int line = 0;
  std::string rule;
};

/// Result of subtracting a baseline from the findings.
struct BaselineResult {
  /// Findings not covered by the baseline (these gate).
  std::vector<Violation> remaining;
  /// Baseline entries that no longer fire (rot; CI fails on these).
  std::vector<BaselineEntry> stale;
};

/// Analyzes one in-memory file (for tests and editor integration).
/// `relative_path` is used in findings and for the util/hotpath.h
/// self-exclusion.
std::vector<Violation> AnalyzeFile(const std::string& relative_path,
                                   const std::string& contents,
                                   const Options& options = {});

/// Lints every .h/.cc/.cpp file under `root`, returning violations sorted
/// by file, line, then rule. NOLINT_HOTPATH suppressions are already
/// applied; baseline subtraction is the caller's job (ApplyBaseline).
std::vector<Violation> AnalyzeTree(const std::string& root,
                                   const Options& options = {});

/// Splits findings into (not in baseline, stale baseline entries).
BaselineResult ApplyBaseline(const std::vector<Violation>& violations,
                             const std::vector<BaselineEntry>& baseline);

/// Parses a baseline file: {"findings": [{"file": ..., "line": N,
/// "rule": ...}, ...]}. Returns false (with *error set) on I/O or parse
/// failure.
bool ParseBaselineFile(const std::string& path,
                       std::vector<BaselineEntry>* baseline,
                       std::string* error);

/// Renders `violations` as a baseline file body (the --write-baseline
/// workflow; DESIGN.md §13).
std::string BaselineToJson(const std::vector<Violation>& violations);

/// "file:line: rule: message" lines, the stable format fixtures assert
/// against and CI greps (same shape as check_layers).
std::string FormatViolations(const std::vector<Violation>& violations);

/// JSON array of {file, line, rule, message} objects.
std::string ViolationsToJson(const std::vector<Violation>& violations);

}  // namespace hotpath
}  // namespace surveyor

#endif  // SURVEYOR_TOOLS_CHECK_HOTPATH_LIB_H_
