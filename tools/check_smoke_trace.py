#!/usr/bin/env python3
"""Cross-checks /tracez against /metrics for the serving-smoke CI job.

Usage: check_smoke_trace.py <tracez.json> <metrics.txt>

Asserts the tracing plane is wired end to end:
  1. /tracez retained at least one head-sampled trace.
  2. The query latency histogram on /metrics carries OpenMetrics-style
     exemplars (`# {trace_id="..."} value`).
  3. At least one exemplar trace id resolves to a retained trace whose
     span tree crosses the whole serving stack: query_service.point ->
     opinion_index.lookup -> snapshot.materialize.
"""
import json
import re
import sys


def span_names(spans):
    names = []
    for span in spans:
        names.append(span["name"])
        names.extend(span_names(span.get("children", [])))
    return names


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <tracez.json> <metrics.txt>")
    with open(sys.argv[1]) as f:
        tracez = json.load(f)
    with open(sys.argv[2]) as f:
        metrics = f.read()

    sampled = [t for t in tracez.get("traces", []) if t.get("sampled")]
    if not sampled:
        sys.exit("FAIL: /tracez retained no sampled trace")

    exemplar_ids = set(
        re.findall(
            r'surveyor_query_latency_seconds_bucket\{[^}]*\} \d+ '
            r'# \{trace_id="([0-9a-f]{16})"\}',
            metrics,
        )
    )
    if not exemplar_ids:
        sys.exit(
            "FAIL: no exemplar on the surveyor_query_latency_seconds "
            "histogram in /metrics"
        )

    want = {"query_service.point", "opinion_index.lookup",
            "snapshot.materialize"}
    for trace in sampled:
        if trace["trace_id"] not in exemplar_ids:
            continue
        names = set(span_names(trace.get("spans", [])))
        if want <= names:
            print(
                f"OK: exemplar trace {trace['trace_id']} spans the serving "
                f"stack ({', '.join(sorted(want))})"
            )
            return
    sys.exit(
        "FAIL: no exemplar trace id resolves to a /tracez trace containing "
        f"spans {sorted(want)}; exemplars={sorted(exemplar_ids)}"
    )


if __name__ == "__main__":
    main()
