#!/usr/bin/env bash
# Refreshes the repo's perf snapshot: builds the benches, runs the
# end-to-end scaling bench plus the obs micro-benchmarks, and writes
# BENCH_pipeline.json at the repo root (commit it to track the perf
# trajectory over time).
#
#   tools/run_bench.sh [build_dir]      (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -S "$repo_root" -B "$build_dir" >/dev/null

# Sanitizer instrumentation (TSan/ASan/UBSan) slows everything down by
# integer factors; numbers from such a build must never land in the
# committed perf snapshot.
sanitize="$(grep '^SURVEYOR_SANITIZE:' "$build_dir/CMakeCache.txt" \
  | cut -d= -f2- || true)"
if [[ -n "$sanitize" ]]; then
  echo "run_bench.sh: refusing to benchmark a sanitizer-instrumented build" >&2
  echo "  ($build_dir has SURVEYOR_SANITIZE=$sanitize; use a clean build dir)" >&2
  exit 1
fi

# Same rule for fault injection: a chaos-armed environment perturbs every
# measured path (retries, quarantines, backoff sleeps), so benchmark numbers
# taken under it are meaningless.
if [[ -n "${SURVEYOR_FAULTS:-}" || -n "${SURVEYOR_FAULT_SEED:-}" ]]; then
  echo "run_bench.sh: refusing to benchmark with fault injection armed" >&2
  echo "  (unset SURVEYOR_FAULTS / SURVEYOR_FAULT_SEED and rerun)" >&2
  exit 1
fi

# And for the profiler: SURVEYOR_PROFILE arms a 97 Hz SIGPROF sampler in
# every CLI child, which perturbs all wall-clock numbers. profile_bench
# manages its own profile window.
if [[ -n "${SURVEYOR_PROFILE:-}" ]]; then
  echo "run_bench.sh: refusing to benchmark with the profiler armed" >&2
  echo "  (unset SURVEYOR_PROFILE and rerun)" >&2
  exit 1
fi

cmake --build "$build_dir" -j --target bench_report query_bench \
  load_bench scaling_pipeline micro_benchmarks profile_bench

echo "== machine-readable snapshot (BENCH_pipeline.json) =="
(cd "$repo_root" && "$build_dir/bench/bench_report" BENCH_pipeline.json)

echo
echo "== query-throughput snapshot (BENCH_query.json) =="
(cd "$repo_root" && "$build_dir/bench/query_bench" BENCH_query.json)

echo
echo "== serving-tier load snapshot (BENCH_serving.json) =="
(cd "$repo_root" && "$build_dir/bench/load_bench" BENCH_serving.json)
python3 "$repo_root/tools/check_serving_bench.py" \
  "$repo_root/BENCH_serving.json"

echo
echo "== stage-attribution snapshot (BENCH_profile.json) =="
(cd "$repo_root" && "$build_dir/bench/profile_bench" BENCH_profile.json)

echo
echo "== obs micro-benchmarks (google-benchmark) =="
"$build_dir/bench/micro_benchmarks" \
  --benchmark_min_time=0.05s 2>/dev/null ||
  "$build_dir/bench/micro_benchmarks" --benchmark_min_time=0.05

echo
echo "== pipeline scaling tables =="
"$build_dir/bench/scaling_pipeline"
