// check_layers: dependency-DAG and include-hygiene linter for src/.
//
//   check_layers [--root DIR] [--rules FILE] [--json FILE]
//                [--guard-prefix PREFIX]
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
// Violations print to stdout as "file:line: rule: message"; --json
// additionally writes a machine-readable report. Runs as a CTest entry
// (check_layers_src) so an illegal include fails the build.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "tools/check_layers_lib.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--rules FILE] [--json FILE]"
               " [--guard-prefix PREFIX]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using surveyor::layers::AnalyzeTree;
  using surveyor::layers::DefaultRules;
  using surveyor::layers::FormatViolations;
  using surveyor::layers::LayerRules;
  using surveyor::layers::Options;
  using surveyor::layers::ParseRulesFile;
  using surveyor::layers::ValidateRules;
  using surveyor::layers::Violation;
  using surveyor::layers::ViolationsToJson;

  std::string root = "src";
  std::string rules_path;
  std::string json_path;
  Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--root" && has_value) {
      root = argv[++i];
    } else if (arg == "--rules" && has_value) {
      rules_path = argv[++i];
    } else if (arg == "--json" && has_value) {
      json_path = argv[++i];
    } else if (arg == "--guard-prefix" && has_value) {
      options.guard_prefix = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  if (!std::filesystem::is_directory(root)) {
    std::cerr << "check_layers: root '" << root << "' is not a directory\n";
    return 2;
  }

  LayerRules rules = DefaultRules();
  if (!rules_path.empty()) {
    std::string error;
    if (!ParseRulesFile(rules_path, &rules, &error)) {
      std::cerr << "check_layers: " << error << "\n";
      return 2;
    }
  }
  const std::string rules_error = ValidateRules(rules);
  if (!rules_error.empty()) {
    std::cerr << "check_layers: " << rules_error << "\n";
    return 2;
  }

  const std::vector<Violation> violations = AnalyzeTree(root, rules, options);
  std::cout << FormatViolations(violations);
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "check_layers: cannot write '" << json_path << "'\n";
      return 2;
    }
    json << ViolationsToJson(violations);
  }
  std::cerr << "check_layers: " << violations.size() << " violation(s) under "
            << root << "\n";
  return violations.empty() ? 0 : 1;
}
