#include "tools/check_hotpath_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "tools/lint_util.h"

namespace surveyor {
namespace hotpath {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Lexing: split a file into per-line code text (comments stripped, string
// literals collapsed to "" and char literals to '') and per-line comment
// text (where the region and NOLINT directives live). The analyzer never
// sees the inside of a literal, so `"new"` in a string can't fire a rule.
// ---------------------------------------------------------------------------

struct StrippedFile {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

StrippedFile Strip(const std::string& contents) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  StrippedFile out;
  out.code.emplace_back();
  out.comments.emplace_back();
  State state = State::kCode;
  std::string raw_delimiter;  // ")delim" that ends the active raw string
  for (size_t i = 0; i < contents.size(); ++i) {
    const char c = contents[i];
    const char next = i + 1 < contents.size() ? contents[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      out.code.emplace_back();
      out.comments.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (out.code.back().empty() ||
                    !(std::isalnum(static_cast<unsigned char>(
                          out.code.back().back())) ||
                      out.code.back().back() == '_'))) {
          // R"delim( ... )delim"
          size_t open = contents.find('(', i + 2);
          if (open == std::string::npos) open = contents.size();
          raw_delimiter =
              ")" + contents.substr(i + 2, open - (i + 2)) + "\"";
          out.code.back() += "\"\"";
          state = State::kRawString;
          i = open;
        } else if (c == '"') {
          out.code.back() += "\"\"";
          state = State::kString;
        } else if (c == '\'' &&
                   !(i > 0 &&
                     std::isxdigit(static_cast<unsigned char>(
                         contents[i - 1])) &&
                     std::isxdigit(static_cast<unsigned char>(next)))) {
          // A digit separator (1'000) is kept; anything else opens a
          // char literal.
          out.code.back() += "''";
          state = State::kChar;
        } else {
          out.code.back().push_back(c);
        }
        break;
      case State::kLineComment:
        out.comments.back().push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          out.comments.back().push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' &&
            contents.compare(i, raw_delimiter.size(), raw_delimiter) == 0) {
          i += raw_delimiter.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenization of the stripped code.
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;  // 1-based
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Tok> Lex(const std::vector<std::string>& code_lines) {
  std::vector<Tok> toks;
  for (size_t l = 0; l < code_lines.size(); ++l) {
    const std::string& line = code_lines[l];
    const int line_number = static_cast<int>(l + 1);
    for (size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t j = i + 1;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        toks.push_back({line.substr(i, j - i), line_number});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i + 1;
        while (j < line.size() &&
               (IsIdentChar(line[j]) || line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        toks.push_back({line.substr(i, j - i), line_number});
        i = j;
        continue;
      }
      // Multi-char operators the patterns care about.
      if (i + 1 < line.size()) {
        const std::string two = line.substr(i, 2);
        if (two == "::" || two == "->" || two == "&&" || two == "\"\"" ||
            two == "''") {
          toks.push_back({two, line_number});
          i += 2;
          continue;
        }
      }
      toks.push_back({std::string(1, c), line_number});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Hot-region discovery.
// ---------------------------------------------------------------------------

/// region_of_line[i] is 0 outside any hot region; otherwise the id of the
/// (outermost) region covering 1-based line i+1. reserve()/push_back()
/// pairing is scoped by this id.
struct Regions {
  std::vector<int> region_of_line;
  std::vector<Violation> malformed;
};

bool LineIsPreprocessor(const std::string& code_line) {
  for (const char c : code_line) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return c == '#';
  }
  return false;
}

Regions FindRegions(const std::string& relative_path,
                    const StrippedFile& stripped,
                    const std::vector<Tok>& toks) {
  Regions regions;
  regions.region_of_line.assign(stripped.code.size(), 0);
  int next_region_id = 1;

  // Comment-delimited regions. Nested BEGINs deepen the same outermost
  // region; the first unmatched END closes it.
  int depth = 0;
  int open_region = 0;
  int open_line = 0;
  for (size_t l = 0; l < stripped.comments.size(); ++l) {
    const std::string& comment = stripped.comments[l];
    const int line_number = static_cast<int>(l + 1);
    const bool begin =
        comment.find("SURVEYOR_HOT_BEGIN") != std::string::npos;
    const bool end = comment.find("SURVEYOR_HOT_END") != std::string::npos;
    if (begin) {
      if (depth == 0) {
        open_region = next_region_id++;
        open_line = line_number;
      }
      ++depth;
    } else if (end) {
      if (depth == 0) {
        regions.malformed.push_back(
            {relative_path, line_number, "region",
             "SURVEYOR_HOT_END without a matching SURVEYOR_HOT_BEGIN"});
      } else {
        --depth;
        if (depth == 0) open_region = 0;
      }
    } else if (depth > 0 && regions.region_of_line[l] == 0) {
      regions.region_of_line[l] = open_region;
    }
  }
  if (depth > 0) {
    regions.malformed.push_back(
        {relative_path, open_line, "region",
         "unterminated SURVEYOR_HOT_BEGIN (no matching SURVEYOR_HOT_END)"});
  }

  // SURVEYOR_HOT_FUNCTION markers: the region spans the signature and, for
  // definitions, the brace-matched body; for declarations, up to the ';'.
  for (size_t t = 0; t < toks.size(); ++t) {
    if (toks[t].text != "SURVEYOR_HOT_FUNCTION") continue;
    const size_t line_index = static_cast<size_t>(toks[t].line - 1);
    if (line_index < stripped.code.size() &&
        LineIsPreprocessor(stripped.code[line_index])) {
      continue;  // the #define in util/hotpath.h
    }
    const int region = next_region_id++;
    int last_line = toks[t].line;
    int brace_depth = 0;
    bool entered_body = false;
    for (size_t j = t + 1; j < toks.size(); ++j) {
      const std::string& text = toks[j].text;
      if (text == "{") {
        ++brace_depth;
        entered_body = true;
      } else if (text == "}") {
        --brace_depth;
      } else if (text == ";" && !entered_body) {
        last_line = toks[j].line;  // declaration only
        break;
      }
      if (entered_body && brace_depth == 0) {
        last_line = toks[j].line;
        break;
      }
      last_line = toks[j].line;
    }
    for (int l = toks[t].line; l <= last_line; ++l) {
      if (regions.region_of_line[l - 1] == 0) {
        regions.region_of_line[l - 1] = region;
      }
    }
  }
  return regions;
}

// ---------------------------------------------------------------------------
// Rule scanning over the token stream.
// ---------------------------------------------------------------------------

const std::set<std::string>& LockNames() {
  static const std::set<std::string> names{"MutexLock", "lock_guard",
                                           "unique_lock", "scoped_lock"};
  return names;
}

const std::set<std::string>& LockMethods() {
  static const std::set<std::string> names{"Lock", "lock", "TryLock",
                                           "try_lock"};
  return names;
}

const std::set<std::string>& IoNames() {
  static const std::set<std::string> names{
      "SURVEYOR_LOG", "cout",  "cerr",  "clog",     "printf",
      "fprintf",      "puts",  "fputs", "fopen",    "fread",
      "fwrite",       "fscanf", "ifstream", "ofstream", "fstream"};
  return names;
}

struct Scanner {
  const std::string& file;
  const std::vector<Tok>& toks;
  const Regions& regions;
  std::vector<Violation>* out;
  /// (region id, container name) pairs that have a reserve() call.
  std::set<std::pair<int, std::string>> reserved;

  int RegionOf(size_t t) const {
    const size_t line_index = static_cast<size_t>(toks[t].line - 1);
    if (line_index >= regions.region_of_line.size()) return 0;
    return regions.region_of_line[line_index];
  }

  const std::string& Text(size_t t) const {
    static const std::string empty;
    return t < toks.size() ? toks[t].text : empty;
  }

  void Add(size_t t, const char* rule, std::string message) {
    out->push_back({file, toks[t].line, rule, std::move(message)});
  }

  /// Index just past a balanced <...> opening at `t` (Text(t) == "<"),
  /// or t+1 when unbalanced.
  size_t SkipAngles(size_t t) const {
    int depth = 0;
    for (size_t j = t; j < toks.size(); ++j) {
      if (Text(j) == "<") ++depth;
      if (Text(j) == ">") {
        --depth;
        if (depth == 0) return j + 1;
      }
      if (Text(j) == ";") break;  // give up: not a template argument list
    }
    return t + 1;
  }

  void CollectReserves() {
    for (size_t t = 0; t + 3 < toks.size(); ++t) {
      const int region = RegionOf(t);
      if (region == 0) continue;
      if ((Text(t + 1) == "." || Text(t + 1) == "->") &&
          Text(t + 2) == "reserve" && Text(t + 3) == "(" &&
          IsIdentStart(Text(t)[0])) {
        reserved.insert({region, Text(t)});
      }
    }
  }

  bool Reserved(int region, const std::string& name) const {
    return reserved.count({region, name}) > 0;
  }

  void ScanHotRules() {
    for (size_t t = 0; t < toks.size(); ++t) {
      const int region = RegionOf(t);
      if (region == 0) continue;
      const std::string& text = Text(t);

      if (text == "new" && Text(t + 1) != "_") {
        Add(t, "no-heap-alloc", "operator new in hot region");
        continue;
      }
      if (text == "make_unique" || text == "make_shared") {
        Add(t, "no-heap-alloc", "'" + text + "' allocates in hot region");
        continue;
      }
      if ((text == "." || text == "->") &&
          (Text(t + 1) == "push_back" || Text(t + 1) == "emplace_back") &&
          Text(t + 2) == "(" && t > 0 && IsIdentStart(Text(t - 1)[0])) {
        const std::string& name = Text(t - 1);
        if (!Reserved(region, name)) {
          Add(t + 1, "no-heap-alloc",
              "'" + name + "." + Text(t + 1) + "' without a prior '" + name +
                  ".reserve' in this hot region");
        }
        continue;
      }
      if (LockNames().count(text) > 0) {
        Add(t, "no-lock", "lock acquisition ('" + text + "') in hot region");
        continue;
      }
      if ((text == "." || text == "->") &&
          LockMethods().count(Text(t + 1)) > 0 && Text(t + 2) == "(") {
        Add(t + 1, "no-lock",
            "lock acquisition ('." + Text(t + 1) + "()') in hot region");
        continue;
      }
      if (IoNames().count(text) > 0) {
        Add(t, "no-io-log", "I/O or logging ('" + text + "') in hot region");
        continue;
      }
      if (text == "std" && Text(t + 1) == "::") ScanStdDecl(t, region);
    }
  }

  /// Handles `std::string ...` and `std::vector<...> ...` patterns at `t`
  /// (Text(t) == "std").
  void ScanStdDecl(size_t t, int region) {
    const std::string& kind = Text(t + 2);
    size_t name_index;  // candidate variable/parameter name
    if (kind == "string") {
      name_index = t + 3;
    } else if (kind == "vector" && Text(t + 3) == "<") {
      name_index = SkipAngles(t + 3);
    } else {
      return;
    }
    const std::string& name = Text(name_index);
    if (name.empty() || !IsIdentStart(name[0])) return;
    const std::string& after = Text(name_index + 1);

    if (kind == "string") {
      // By-value parameter: (`(`|`,`) [const] std::string name (`,`|`)`|`=`)
      size_t before = t;
      if (t > 0 && Text(t - 1) == "const") before = t - 1;
      const bool param_position =
          before > 0 && (Text(before - 1) == "(" || Text(before - 1) == ",");
      if (param_position && (after == "," || after == ")" || after == "=")) {
        Add(name_index, "no-string-copy",
            "by-value std::string parameter '" + name +
                "'; pass std::string_view");
        return;
      }
      if (after == ";") {
        if (!Reserved(region, name)) {
          Add(name_index, "no-heap-alloc",
              "std::string '" + name +
                  "' constructed in hot region (hoist or reserve the "
                  "buffer)");
        }
        return;
      }
      if (after == "=" || after == "{" || after == "(") {
        const std::string& init = Text(name_index + 2);
        if (init == ")" || init == "}") return;  // function decl `f()` etc.
        if (after == "(" && !(Text(name_index + 2) == "\"\"" ||
                              IsIdentStart(init.empty() ? '(' : init[0]))) {
          return;
        }
        if (after == "(") {
          // `std::string Foo(std::string_view x)` is a declaration, not a
          // copy; only flag ctor calls from a plain identifier expression.
          if (!(IsIdentStart(init[0]) &&
                (Text(name_index + 3) == ")" || Text(name_index + 3) == "." ||
                 Text(name_index + 3) == "->"))) {
            return;
          }
        }
        if (init == "\"\"") {
          Add(name_index, "no-heap-alloc",
              "std::string '" + name +
                  "' constructed in hot region (hoist or reserve the "
                  "buffer)");
        } else {
          Add(name_index, "no-string-copy",
              "std::string '" + name +
                  "' copy-initialized in hot region; consider "
                  "std::string_view");
        }
      }
      return;
    }

    // std::vector<...> declarations: flag default/copy construction without
    // a reserve in the region. `name(` (function decl or sized ctor) is
    // deliberately not flagged.
    if ((after == ";" || after == "=" || after == "{") &&
        !Reserved(region, name)) {
      Add(name_index, "no-heap-alloc",
          "std::vector '" + name +
              "' constructed without reserve in hot region");
    }
  }

  // -- unused-status audit --------------------------------------------------

  /// Function names the token stream declares as returning Status or
  /// StatusOr (pattern: [util::]Status[Or<...>] Qualified::Name `(`).
  void CollectStatusReturners(std::set<std::string>* names) const {
    for (size_t t = 0; t < toks.size(); ++t) {
      const std::string& text = Text(t);
      if (text != "Status" && text != "StatusOr") continue;
      if (t > 0 && (Text(t - 1) == "." || Text(t - 1) == "->")) continue;
      size_t j = t + 1;
      if (text == "StatusOr") {
        if (Text(j) != "<") continue;
        j = SkipAngles(j);
      }
      if (Text(j) == "::") continue;  // Status::OK(...) expression
      // Qualified id: IDENT (:: IDENT)*
      std::string last;
      while (j < toks.size() && IsIdentStart(Text(j)[0])) {
        last = Text(j);
        if (Text(j + 1) == "::") {
          j += 2;
        } else {
          ++j;
          break;
        }
      }
      if (last.empty() || Text(j) != "(") continue;
      names->insert(last);
    }
  }

  void ScanUnusedStatus(const std::set<std::string>& status_returners) {
    // A statement that is exactly a call chain `a.b()->c(...)...;` whose
    // outermost callee returns Status discards the result.
    size_t t = 0;
    while (t < toks.size()) {
      // Find a statement start.
      if (t > 0 && Text(t - 1) != ";" && Text(t - 1) != "{" &&
          Text(t - 1) != "}") {
        ++t;
        continue;
      }
      if (!IsIdentStart(Text(t).empty() ? ';' : Text(t)[0])) {
        ++t;
        continue;
      }
      // Match: IDENT ((. | -> | ::) IDENT)* `(` balanced `)` `;`
      size_t j = t;
      std::string callee = Text(j);
      ++j;
      while ((Text(j) == "." || Text(j) == "->" || Text(j) == "::") &&
             !Text(j + 1).empty() && IsIdentStart(Text(j + 1)[0])) {
        callee = Text(j + 1);
        j += 2;
      }
      if (Text(j) != "(") {
        ++t;
        continue;
      }
      int depth = 0;
      while (j < toks.size()) {
        if (Text(j) == "(") ++depth;
        if (Text(j) == ")") {
          --depth;
          if (depth == 0) break;
        }
        ++j;
      }
      if (Text(j) == ")" && Text(j + 1) == ";" &&
          status_returners.count(callee) > 0) {
        Add(t, "unused-status",
            "result of status-returning '" + callee + "' is discarded");
        t = j + 2;
        continue;
      }
      ++t;
    }
  }
};

std::vector<Violation> AnalyzeStripped(
    const std::string& relative_path, const StrippedFile& stripped,
    const Options& options,
    const std::set<std::string>* tree_status_returners) {
  const std::vector<Tok> toks = Lex(stripped.code);
  const Regions regions = FindRegions(relative_path, stripped, toks);

  std::vector<Violation> violations = regions.malformed;
  Scanner scanner{relative_path, toks, regions, &violations, {}};
  scanner.CollectReserves();
  scanner.ScanHotRules();
  if (options.audit_unused_status) {
    std::set<std::string> local;
    if (tree_status_returners == nullptr) {
      scanner.CollectStatusReturners(&local);
      tree_status_returners = &local;
    }
    scanner.ScanUnusedStatus(*tree_status_returners);
  }

  // NOLINT_HOTPATH / NOLINTNEXTLINE_HOTPATH line suppressions.
  violations.erase(
      std::remove_if(violations.begin(), violations.end(),
                     [&](const Violation& v) {
                       return lint::IsSuppressed(stripped.comments, v.line,
                                                 "HOTPATH", v.rule);
                     }),
      violations.end());

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  violations.erase(std::unique(violations.begin(), violations.end()),
                   violations.end());
  return violations;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::vector<Violation> AnalyzeFile(const std::string& relative_path,
                                   const std::string& contents,
                                   const Options& options) {
  return AnalyzeStripped(relative_path, Strip(contents), options, nullptr);
}

std::vector<Violation> AnalyzeTree(const std::string& root,
                                   const Options& options) {
  std::vector<std::pair<std::string, StrippedFile>> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    files.emplace_back(entry.path().lexically_relative(root).generic_string(),
                       Strip(buffer.str()));
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // The audit needs the status-returning names of the whole tree: a
  // discarded call usually targets a function declared in another file.
  std::set<std::string> status_returners;
  if (options.audit_unused_status) {
    for (const auto& [path, stripped] : files) {
      const std::vector<Tok> toks = Lex(stripped.code);
      const Regions regions = FindRegions(path, stripped, toks);
      Scanner scanner{path, toks, regions, nullptr, {}};
      scanner.CollectStatusReturners(&status_returners);
    }
  }

  std::vector<Violation> violations;
  for (const auto& [path, stripped] : files) {
    std::vector<Violation> file_violations = AnalyzeStripped(
        path, stripped, options,
        options.audit_unused_status ? &status_returners : nullptr);
    violations.insert(violations.end(),
                      std::make_move_iterator(file_violations.begin()),
                      std::make_move_iterator(file_violations.end()));
  }
  return violations;
}

BaselineResult ApplyBaseline(const std::vector<Violation>& violations,
                             const std::vector<BaselineEntry>& baseline) {
  std::map<std::tuple<std::string, int, std::string>, bool> matched;
  for (const BaselineEntry& entry : baseline) {
    matched[{entry.file, entry.line, entry.rule}] = false;
  }
  BaselineResult result;
  for (const Violation& v : violations) {
    auto it = matched.find({v.file, v.line, v.rule});
    if (it != matched.end()) {
      it->second = true;
    } else {
      result.remaining.push_back(v);
    }
  }
  for (const BaselineEntry& entry : baseline) {
    auto it = matched.find({entry.file, entry.line, entry.rule});
    if (it != matched.end() && !it->second) result.stale.push_back(entry);
  }
  return result;
}

bool ParseBaselineFile(const std::string& path,
                       std::vector<BaselineEntry>* baseline,
                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open baseline file '" + path + "'";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  baseline->clear();

  // Minimal parser for the fixed shape this tool writes: a "findings"
  // array of flat objects with "file", "line", and "rule" members.
  const auto string_field = [&](size_t begin, size_t end,
                                const std::string& key) -> std::string {
    const std::string needle = "\"" + key + "\"";
    size_t pos = text.find(needle, begin);
    if (pos == std::string::npos || pos >= end) return "";
    pos = text.find('"', text.find(':', pos) + 1);
    if (pos == std::string::npos || pos >= end) return "";
    std::string value;
    for (size_t i = pos + 1; i < end; ++i) {
      const char c = text[i];
      if (c == '\\' && i + 1 < end) {
        const char escaped = text[++i];
        value.push_back(escaped == 'n' ? '\n'
                                       : (escaped == 't' ? '\t' : escaped));
        continue;
      }
      if (c == '"') return value;
      value.push_back(c);
    }
    return "";
  };
  size_t pos = text.find('{', text.find("\"findings\""));
  if (text.find("\"findings\"") == std::string::npos) {
    *error = path + ": missing \"findings\" array";
    return false;
  }
  while (pos != std::string::npos) {
    const size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    BaselineEntry entry;
    entry.file = string_field(pos, end, "file");
    entry.rule = string_field(pos, end, "rule");
    const size_t line_pos = text.find("\"line\"", pos);
    if (line_pos != std::string::npos && line_pos < end) {
      entry.line =
          std::atoi(text.c_str() + text.find(':', line_pos) + 1);
    }
    if (entry.file.empty() || entry.rule.empty() || entry.line <= 0) {
      *error = path + ": baseline entry missing file/line/rule near offset " +
               std::to_string(pos);
      return false;
    }
    baseline->push_back(std::move(entry));
    pos = text.find('{', end);
  }
  return true;
}

std::string BaselineToJson(const std::vector<Violation>& violations) {
  std::string out =
      "{\n  \"comment\": \"grandfathered check_hotpath findings; pay down, "
      "never grow (DESIGN.md \\u00a713)\",\n  \"findings\": [";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) out += ",";
    out += "\n    {\"file\": \"" + JsonEscape(v.file) +
           "\", \"line\": " + std::to_string(v.line) + ", \"rule\": \"" +
           JsonEscape(v.rule) + "\"}";
  }
  out += violations.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += v.file + ":" + std::to_string(v.line) + ": " + v.rule + ": " +
           v.message + "\n";
  }
  return out;
}

std::string ViolationsToJson(const std::vector<Violation>& violations) {
  std::string out = "[";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + JsonEscape(v.file) +
           "\", \"line\": " + std::to_string(v.line) + ", \"rule\": \"" +
           JsonEscape(v.rule) + "\", \"message\": \"" + JsonEscape(v.message) +
           "\"}";
  }
  out += violations.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace hotpath
}  // namespace surveyor
