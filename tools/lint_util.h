#ifndef SURVEYOR_TOOLS_LINT_UTIL_H_
#define SURVEYOR_TOOLS_LINT_UTIL_H_

// Suppression-comment parsing shared by the stdlib-only linters
// (check_layers, check_hotpath). Both tools accept clang-tidy-style
// line suppressions, namespaced per tool so a NOLINT for one linter
// never silences the other:
//
//   code;  // NOLINT_<TOOL>             suppress every rule on this line
//   code;  // NOLINT_<TOOL>(rule)       suppress one rule
//   code;  // NOLINT_<TOOL>(a, b)       suppress several rules
//   // NOLINTNEXTLINE_<TOOL>(rule)      same, for the following line
//
// <TOOL> is "LAYERS" or "HOTPATH". Anything after the closing paren is
// free-form justification text (encouraged).

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace surveyor {
namespace lint {

/// One parsed suppression directive.
struct Nolint {
  /// True for NOLINTNEXTLINE_<tool> (applies to the following line).
  bool next_line = false;
  /// Suppressed rule names; empty means "all rules".
  std::set<std::string> rules;
};

/// Parses every NOLINT_<tool>/NOLINTNEXTLINE_<tool> directive in `text`
/// (typically the comment text of one source line). `tool` is the
/// upper-case namespace, e.g. "HOTPATH".
std::vector<Nolint> ParseNolints(std::string_view text, std::string_view tool);

/// True when a violation of `rule` on line `line` (1-based) is suppressed
/// by the directives of `lines` (the per-line comment text of the file,
/// index 0 = line 1): a same-line NOLINT or a previous-line NOLINTNEXTLINE
/// covering `rule`.
bool IsSuppressed(const std::vector<std::string>& comment_lines, int line,
                  std::string_view tool, std::string_view rule);

}  // namespace lint
}  // namespace surveyor

#endif  // SURVEYOR_TOOLS_LINT_UTIL_H_
