#include "tools/lint_util.h"

#include <cctype>

namespace surveyor {
namespace lint {

namespace {

bool IsRuleChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

/// Parses the optional "(rule, rule)" list starting at `pos` (just past the
/// directive name). Returns the rules (empty = all); a malformed or absent
/// list counts as "all rules", so a typo widens rather than silently
/// narrows the suppression.
std::set<std::string> ParseRuleList(std::string_view text, size_t pos) {
  std::set<std::string> rules;
  if (pos >= text.size() || text[pos] != '(') return rules;
  const size_t close = text.find(')', pos + 1);
  if (close == std::string_view::npos) return rules;
  std::string current;
  for (size_t i = pos + 1; i < close; ++i) {
    const char c = text[i];
    if (IsRuleChar(c)) {
      current.push_back(c);
    } else if (!current.empty()) {
      rules.insert(current);
      current.clear();
    }
  }
  if (!current.empty()) rules.insert(current);
  return rules;
}

}  // namespace

std::vector<Nolint> ParseNolints(std::string_view text,
                                 std::string_view tool) {
  std::vector<Nolint> directives;
  const std::string same_line = "NOLINT_" + std::string(tool);
  const std::string next_line = "NOLINTNEXTLINE_" + std::string(tool);
  size_t pos = 0;
  while ((pos = text.find("NOLINT", pos)) != std::string_view::npos) {
    Nolint directive;
    size_t name_end;
    if (text.compare(pos, next_line.size(), next_line) == 0) {
      directive.next_line = true;
      name_end = pos + next_line.size();
    } else if (text.compare(pos, same_line.size(), same_line) == 0) {
      name_end = pos + same_line.size();
    } else {
      ++pos;
      continue;
    }
    // Reject prefixes of a longer token (e.g. NOLINT_HOTPATHX).
    if (name_end < text.size() && IsRuleChar(text[name_end])) {
      pos = name_end;
      continue;
    }
    directive.rules = ParseRuleList(text, name_end);
    directives.push_back(std::move(directive));
    pos = name_end;
  }
  return directives;
}

bool IsSuppressed(const std::vector<std::string>& comment_lines, int line,
                  std::string_view tool, std::string_view rule) {
  const auto covers = [&](const Nolint& directive) {
    return directive.rules.empty() ||
           directive.rules.count(std::string(rule)) > 0;
  };
  if (line >= 1 && line <= static_cast<int>(comment_lines.size())) {
    for (const Nolint& directive :
         ParseNolints(comment_lines[line - 1], tool)) {
      if (!directive.next_line && covers(directive)) return true;
    }
  }
  if (line >= 2 && line - 1 <= static_cast<int>(comment_lines.size())) {
    for (const Nolint& directive :
         ParseNolints(comment_lines[line - 2], tool)) {
      if (directive.next_line && covers(directive)) return true;
    }
  }
  return false;
}

}  // namespace lint
}  // namespace surveyor
