#!/usr/bin/env python3
"""Gates BENCH_serving.json for the load-smoke CI job.

Usage: check_serving_bench.py [--min-rate R] [--max-p99-ms MS] <bench.json>

The input is the snapshot bench/load_bench writes: a "sections" array of
fixed-rate open-loop runs (keepalive_2k, keepalive_5k, keepalive_10k)
plus the closed-loop overload_shed section.

Checks:
  1. Every section answered only 2xx or 429 — no other statuses, no
     transport errors. The serving tier may shed, it may never break.
  2. The fastest fixed-rate section achieved at least --min-rate req/s
     (default 10000 * 0.95) with p99 below --max-p99-ms (default 5.0) —
     the acceptance floor for the epoll serving tier.
  3. The overload section shed at least one request with 429: admission
     control demonstrably engages past the queue high-water mark.
"""
import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", help="BENCH_serving.json snapshot")
    parser.add_argument(
        "--min-rate",
        type=float,
        default=10000 * 0.95,
        metavar="R",
        help="required achieved req/s in the fastest fixed-rate section",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="p99 latency ceiling for the fastest fixed-rate section",
    )
    args = parser.parse_args()

    with open(args.bench) as f:
        snapshot = json.load(f)
    sections = snapshot.get("sections", [])
    if not sections:
        sys.exit(f"FAIL: {args.bench} holds no sections")

    for section in sections:
        responses = section.get("responses", {})
        name = section.get("name", "?")
        for key in ("other", "transport_errors"):
            if responses.get(key, 0) != 0:
                sys.exit(
                    f"FAIL: section {name} saw {responses[key]} {key} "
                    f"responses; the serving tier may only answer 2xx/429"
                )

    fixed = [s for s in sections if s.get("offered_rate", 0) > 0]
    if not fixed:
        sys.exit(f"FAIL: {args.bench} holds no fixed-rate sections")
    top = max(fixed, key=lambda s: s["offered_rate"])
    achieved = top.get("achieved_rate", 0.0)
    p99 = top.get("latency_ms", {}).get("p99", float("inf"))
    if achieved < args.min_rate:
        sys.exit(
            f"FAIL: {top['name']} achieved {achieved:.0f} req/s, below "
            f"the {args.min_rate:.0f} floor"
        )
    if p99 >= args.max_p99_ms:
        sys.exit(
            f"FAIL: {top['name']} p99 {p99:.3f} ms breaches the "
            f"{args.max_p99_ms} ms ceiling"
        )

    overload = [s for s in sections if "overload" in s.get("name", "")]
    if not overload:
        sys.exit(f"FAIL: {args.bench} holds no overload section")
    shed = overload[0].get("responses", {}).get("shed_429", 0)
    if shed <= 0:
        sys.exit(
            "FAIL: overload section never shed a request; admission "
            "control did not engage"
        )

    print(
        f"OK: {args.bench}: {top['name']} sustained {achieved:.0f} req/s "
        f"at p99 {p99:.3f} ms; overload shed {shed} requests with 429"
    )


if __name__ == "__main__":
    main()
