#ifndef SURVEYOR_TOOLS_CHECK_LAYERS_LIB_H_
#define SURVEYOR_TOOLS_CHECK_LAYERS_LIB_H_

// Dependency-DAG and include-hygiene linter over a source tree (no
// dependencies beyond the standard library, so it can build before
// anything else and gate the rest of the build). Three checks:
//
//   layer            #include "X/..." must follow the layer DAG: a file
//                    under <root>/Y may include headers of Y itself or of
//                    any layer listed for Y in the rules.
//   header-guard     a header's #ifndef/#define guard must be derived
//                    from its path: <prefix><REL_PATH_UPPERCASED>_ with
//                    '/' and '.' mapped to '_' (util/threadpool.h →
//                    SURVEYOR_UTIL_THREADPOOL_H_).
//   using-namespace  headers must not contain `using namespace`.
//
// The rules are themselves validated to be acyclic, so the allowed
// include graph is a DAG by construction. See DESIGN.md §8 for the
// layering contract this enforces over src/.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace surveyor {
namespace layers {

/// One lint finding, pointing at a file line (line 0: whole-file finding).
struct Violation {
  std::string file;  ///< path relative to the analyzed root
  int line = 0;      ///< 1-based; 0 when the finding has no line
  std::string rule;  ///< "layer", "header-guard" or "using-namespace"
  std::string message;
};

/// Allowed dependencies per layer: key = top-level directory under the
/// analyzed root, value = the set of other layers its files may include.
/// Every layer named in a value must itself be a key.
using LayerRules = std::map<std::string, std::set<std::string>>;

struct Options {
  /// Prepended to the path-derived header-guard token.
  std::string guard_prefix = "SURVEYOR_";
};

/// The layering contract of this repository's src/ tree, bottom-up:
/// util depends on nothing (in particular NOT on obs); obs/kb/
/// mapreduce/model sit directly on util; text adds kb; corpus/extraction
/// add model+text; baselines adds extraction; surveyor composes
/// everything below it; eval is the top and may also use surveyor.
LayerRules DefaultRules();

/// Empty string when `rules` is well-formed (every referenced layer
/// defined, no cycles); otherwise a one-line description of the problem.
std::string ValidateRules(const LayerRules& rules);

/// Parses a rules file: one `layer: dep dep ...` entry per line, '#'
/// comments and blank lines ignored. Returns false (with *error set) on
/// malformed input.
bool ParseRulesFile(const std::string& path, LayerRules* rules,
                    std::string* error);

/// Expected header guard for a header at `relative_path` under the root.
std::string ExpectedGuard(const std::string& relative_path,
                          const Options& options);

/// Lints every .h/.cc/.cpp file under `root`, returning violations
/// sorted by file path then line. Layer checks apply to all files;
/// guard and using-namespace checks apply to headers.
std::vector<Violation> AnalyzeTree(const std::string& root,
                                   const LayerRules& rules,
                                   const Options& options = {});

/// "file:line: rule: message" lines, one per violation (the stable
/// format the fixture tests assert against and CI greps).
std::string FormatViolations(const std::vector<Violation>& violations);

/// JSON array of {file, line, rule, message} objects.
std::string ViolationsToJson(const std::vector<Violation>& violations);

}  // namespace layers
}  // namespace surveyor

#endif  // SURVEYOR_TOOLS_CHECK_LAYERS_LIB_H_
