#include "tools/check_layers_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/lint_util.h"

namespace surveyor {
namespace layers {

namespace {

namespace fs = std::filesystem;

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// The quoted include target of a line, or empty: `  #include "x/y.h"`
/// → "x/y.h". Angle-bracket and malformed includes yield empty.
std::string QuotedIncludeTarget(const std::string& line) {
  const std::string trimmed = Trim(line);
  if (trimmed.rfind("#include", 0) != 0) return "";
  const size_t open = trimmed.find('"');
  if (open == std::string::npos) return "";
  const size_t close = trimmed.find('"', open + 1);
  if (close == std::string::npos) return "";
  return trimmed.substr(open + 1, close - open - 1);
}

std::string JoinSorted(const std::set<std::string>& values) {
  std::string joined;
  for (const std::string& value : values) {
    if (!joined.empty()) joined += ", ";
    joined += value;
  }
  return joined.empty() ? "(nothing)" : joined;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// DFS state for cycle detection over the rules graph.
enum class Mark { kUnvisited, kInProgress, kDone };

bool HasCycle(const LayerRules& rules, const std::string& layer,
              std::map<std::string, Mark>& marks, std::string* cycle_node) {
  Mark& mark = marks[layer];
  if (mark == Mark::kDone) return false;
  if (mark == Mark::kInProgress) {
    *cycle_node = layer;
    return true;
  }
  mark = Mark::kInProgress;
  const auto it = rules.find(layer);
  if (it != rules.end()) {
    for (const std::string& dep : it->second) {
      if (HasCycle(rules, dep, marks, cycle_node)) return true;
    }
  }
  marks[layer] = Mark::kDone;
  return false;
}

void CheckHeaderHygiene(const std::string& relative_path,
                        const std::vector<std::string>& lines,
                        const Options& options,
                        std::vector<Violation>* violations) {
  const std::string expected = ExpectedGuard(relative_path, options);
  int ifndef_line = 0;
  std::string ifndef_token;
  int define_line = 0;
  std::string define_token;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string trimmed = Trim(lines[i]);
    if (ifndef_token.empty() && trimmed.rfind("#ifndef ", 0) == 0) {
      ifndef_token = Trim(trimmed.substr(8));
      ifndef_line = static_cast<int>(i + 1);
    } else if (ifndef_line > 0 && define_token.empty() &&
               trimmed.rfind("#define ", 0) == 0) {
      define_token = Trim(trimmed.substr(8));
      define_line = static_cast<int>(i + 1);
    }
    if (trimmed.rfind("using namespace", 0) == 0) {
      violations->push_back({relative_path, static_cast<int>(i + 1),
                             "using-namespace",
                             "headers must not contain 'using namespace'"});
    }
  }
  if (ifndef_token.empty()) {
    violations->push_back({relative_path, 0, "header-guard",
                           "missing include guard '" + expected + "'"});
    return;
  }
  if (ifndef_token != expected) {
    violations->push_back({relative_path, ifndef_line, "header-guard",
                           "guard '" + ifndef_token + "' should be '" +
                               expected + "'"});
  } else if (define_token != expected) {
    violations->push_back({relative_path,
                           define_line > 0 ? define_line : ifndef_line,
                           "header-guard",
                           "#define after #ifndef should be '" + expected +
                               "'"});
  }
}

void CheckLayerEdges(const std::string& relative_path, const std::string& layer,
                     const std::vector<std::string>& lines,
                     const LayerRules& rules,
                     std::vector<Violation>* violations) {
  const auto rule = rules.find(layer);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string target = QuotedIncludeTarget(lines[i]);
    const size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // not a layered include
    const std::string dep = target.substr(0, slash);
    if (dep == layer) continue;
    const int line = static_cast<int>(i + 1);
    if (rule == rules.end()) {
      violations->push_back({relative_path, line, "layer",
                             "file is under '" + layer +
                                 "', which is not a declared layer"});
      continue;
    }
    if (rules.find(dep) == rules.end()) {
      violations->push_back({relative_path, line, "layer",
                             "include \"" + target +
                                 "\" does not resolve to a declared layer"});
      continue;
    }
    if (rule->second.count(dep) == 0) {
      violations->push_back({relative_path, line, "layer",
                             "layer '" + layer + "' may not include '" + dep +
                                 "' (allowed: " + JoinSorted(rule->second) +
                                 ")"});
    }
  }
}

}  // namespace

LayerRules DefaultRules() {
  // Bottom-up layering of src/. A layer may include itself plus anything
  // listed here; the sets are the transitive "everything below me", so a
  // legal refactor never has to loosen them. The load-bearing edge this
  // encodes: util depends on nothing — in particular NOT on obs, which
  // observes util (threadpool, logging) strictly from above.
  return LayerRules{
      {"util", {}},
      {"kb", {"util"}},
      {"mapreduce", {"util"}},
      {"model", {"util"}},
      {"obs", {"util"}},
      {"text", {"kb", "util"}},
      {"corpus", {"kb", "model", "text", "util"}},
      {"extraction", {"kb", "model", "text", "util"}},
      {"baselines", {"extraction", "kb", "model", "text", "util"}},
      {"surveyor",
       {"baselines", "extraction", "kb", "mapreduce", "model", "obs", "text",
        "util"}},
      {"eval",
       {"baselines", "corpus", "extraction", "kb", "mapreduce", "model", "obs",
        "surveyor", "text", "util"}},
      // The online query engine sits on top of the mining stack; nothing
      // in src/ may depend on it (only tools and tests do).
      {"serving",
       {"baselines", "extraction", "kb", "mapreduce", "model", "obs",
        "surveyor", "text", "util"}},
  };
}

std::string ValidateRules(const LayerRules& rules) {
  for (const auto& [layer, deps] : rules) {
    for (const std::string& dep : deps) {
      if (rules.find(dep) == rules.end()) {
        return "layer '" + layer + "' depends on undeclared layer '" + dep +
               "'";
      }
      if (dep == layer) {
        return "layer '" + layer + "' lists itself as a dependency";
      }
    }
  }
  std::map<std::string, Mark> marks;
  for (const auto& [layer, deps] : rules) {
    std::string cycle_node;
    if (HasCycle(rules, layer, marks, &cycle_node)) {
      return "dependency rules contain a cycle through '" + cycle_node + "'";
    }
  }
  return "";
}

bool ParseRulesFile(const std::string& path, LayerRules* rules,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open rules file '" + path + "'";
    return false;
  }
  rules->clear();
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      *error = path + ":" + std::to_string(line_number) +
               ": expected 'layer: dep dep ...'";
      return false;
    }
    const std::string layer = Trim(line.substr(0, colon));
    if (layer.empty()) {
      *error = path + ":" + std::to_string(line_number) + ": empty layer name";
      return false;
    }
    std::set<std::string>& deps = (*rules)[layer];
    std::istringstream dep_stream(line.substr(colon + 1));
    std::string dep;
    while (dep_stream >> dep) deps.insert(dep);
  }
  return true;
}

std::string ExpectedGuard(const std::string& relative_path,
                          const Options& options) {
  std::string guard = options.guard_prefix;
  for (const char c : relative_path) {
    if (c == '/' || c == '.' || c == '-') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

std::vector<Violation> AnalyzeTree(const std::string& root,
                                   const LayerRules& rules,
                                   const Options& options) {
  std::vector<Violation> violations;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& file : files) {
    const std::string relative =
        file.lexically_relative(root).generic_string();
    std::vector<std::string> lines;
    {
      std::ifstream in(file);
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
    }

    const size_t first_violation = violations.size();
    const size_t slash = relative.find('/');
    if (slash != std::string::npos) {
      CheckLayerEdges(relative, relative.substr(0, slash), lines, rules,
                      &violations);
    }
    if (file.extension() == ".h") {
      CheckHeaderHygiene(relative, lines, options, &violations);
    }
    // NOLINT_LAYERS / NOLINTNEXTLINE_LAYERS line suppressions
    // (tools/lint_util.h). Kept per-file so directives only ever see
    // their own file's lines.
    violations.erase(
        std::remove_if(violations.begin() + first_violation, violations.end(),
                       [&](const Violation& v) {
                         return lint::IsSuppressed(lines, v.line, "LAYERS",
                                                   v.rule);
                       }),
        violations.end());
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return violations;
}

std::string FormatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += v.file + ":" + std::to_string(v.line) + ": " + v.rule + ": " +
           v.message + "\n";
  }
  return out;
}

std::string ViolationsToJson(const std::vector<Violation>& violations) {
  std::string out = "[";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + JsonEscape(v.file) +
           "\", \"line\": " + std::to_string(v.line) + ", \"rule\": \"" +
           JsonEscape(v.rule) + "\", \"message\": \"" + JsonEscape(v.message) +
           "\"}";
  }
  out += violations.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace layers
}  // namespace surveyor
