// The Section 2 empirical study as a narrative: why counting statements is
// not enough, and what the probabilistic model fixes.
//
// Shows: polarity bias (far fewer negative statements), occurrence bias
// (big cities are mentioned more), majority-vote mistakes, and the model's
// ability to classify cities that are never mentioned at all.
#include <cmath>
#include <iostream>

#include "baselines/majority_vote.h"
#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "eval/harness.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace surveyor;

  World world = World::Generate(MakeBigCityWorldConfig(461)).value();
  GeneratorOptions corpus_options;
  corpus_options.author_population = 20000;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, corpus_options).Generate();

  ComparisonHarness harness(&world.kb(), &world.lexicon());
  if (!harness.Prepare(corpus).ok()) return 1;
  const TypeId city = world.kb().TypeByName("city").value();
  const PropertyTypeEvidence* big = harness.EvidenceFor(city, "big");
  if (big == nullptr) return 1;

  // --- The biases ----------------------------------------------------------
  int64_t total_pos = 0, total_neg = 0;
  int unmentioned = 0;
  for (const EvidenceCounts& c : big->counts) {
    total_pos += c.positive;
    total_neg += c.negative;
    if (c.total() == 0) ++unmentioned;
  }
  std::cout << StrFormat(
      "statements about 'big city': %lld positive vs %lld negative\n"
      "  -> polarity bias: people rarely write 'X is not a big city'.\n"
      "%d of %zu cities are never mentioned with 'big' at all.\n\n",
      static_cast<long long>(total_pos), static_cast<long long>(total_neg),
      unmentioned, big->counts.size());

  // --- Majority vote vs the model ------------------------------------------
  MajorityVoteClassifier mv;
  SurveyorClassifier surveyor_method;
  const auto mv_polarity = mv.Classify(*big);
  auto fit = surveyor_method.Fit(*big);
  if (!fit.ok()) return 1;
  std::cout << "fitted model: " << fit->params.ToString() << "\n\n";

  TextTable table({"city", "population", "C+", "C-", "majority vote",
                   "model Pr(big)", "model verdict"});
  for (const char* name :
       {"los angeles", "san francisco", "fresno", "palo alto", "eureka"}) {
    const EntityId entity = world.kb().EntitiesByName(name)[0];
    size_t index = 0;
    for (size_t i = 0; i < big->entities.size(); ++i) {
      if (big->entities[i] == entity) index = i;
    }
    const double population =
        world.kb().GetAttribute(entity, "population").value();
    table.AddRow(
        {name, TextTable::Num(population, 0),
         StrFormat("%lld",
                   static_cast<long long>(big->counts[index].positive)),
         StrFormat("%lld",
                   static_cast<long long>(big->counts[index].negative)),
         std::string(PolarityName(mv_polarity[index])),
         TextTable::Num(fit->responsibilities[index], 3),
         fit->responsibilities[index] > 0.5 ? "big" : "not big"});
  }
  table.Print(std::cout);

  // --- Silence as evidence --------------------------------------------------
  int silent_negative = 0, silent = 0;
  for (size_t i = 0; i < big->counts.size(); ++i) {
    if (big->counts[i].total() != 0) continue;
    ++silent;
    if (fit->responsibilities[i] < 0.5) ++silent_negative;
  }
  std::cout << StrFormat(
      "\nOf the %d never-mentioned cities the model classifies %d as NOT\n"
      "big: at Web scale, the absence of evidence is evidence (Sec. 2).\n",
      silent, silent_negative);
  return 0;
}
