// The paper's running example: which animals does the Web consider cute?
//
// Demonstrates the analysis API on one property-type pair: inspecting raw
// evidence counters, fitting the user-behavior model, comparing the
// posterior with simulated AMT workers, and reading the learned bias
// parameters (p+S >> p-S: people say "cute" far more often than "not
// cute").
#include <algorithm>
#include <iostream>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "eval/amt.h"
#include "eval/harness.h"
#include "model/diagnostics.h"
#include "surveyor/surveyor_classifier.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace surveyor;

  // The Section 7.3 evaluation world (Table 2), with the Fig. 10 animals.
  World world = World::Generate(MakePaperWorldConfig(200)).value();
  GeneratorOptions corpus_options;
  corpus_options.author_population = 12000;
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, corpus_options).Generate();

  // Extract evidence once for all pairs.
  ComparisonHarness harness(&world.kb(), &world.lexicon());
  if (!harness.Prepare(corpus).ok()) return 1;

  const TypeId animal = world.kb().TypeByName("animal").value();
  const PropertyTypeEvidence* cute = harness.EvidenceFor(animal, "cute");
  if (cute == nullptr) {
    std::cerr << "no evidence for (animal, cute)\n";
    return 1;
  }
  std::cout << "evidence for (animal, cute): " << cute->total_statements
            << " statements over " << cute->entities.size() << " animals\n";

  // Fit the probabilistic user model with EM.
  SurveyorClassifier surveyor_method;
  auto fit = surveyor_method.Fit(*cute);
  if (!fit.ok()) return 1;
  std::cout << "fitted model: " << fit->params.ToString() << "\n"
            << "  -> the model learned the polarity bias: people voice\n"
            << "     'cute' much more often than 'not cute'.\n\n";

  // Compare against 20 simulated AMT workers per animal.
  AmtSimulator amt(&world, AmtOptions{20});
  Rng rng(2024);
  TextTable table({"animal", "C+", "C-", "Pr(cute)", "verdict",
                   "workers/20"});
  for (const char* name : {"kitten", "puppy", "pony", "koala", "spider",
                           "scorpion", "alligator", "white shark", "tiger",
                           "rat"}) {
    const EntityId entity = world.kb().EntitiesByName(name)[0];
    size_t index = 0;
    for (size_t i = 0; i < cute->entities.size(); ++i) {
      if (cute->entities[i] == entity) index = i;
    }
    const double posterior = fit->responsibilities[index];
    const auto vote = amt.Collect(entity, "cute", rng);
    table.AddRow({name,
                  StrFormat("%lld", static_cast<long long>(
                                        cute->counts[index].positive)),
                  StrFormat("%lld", static_cast<long long>(
                                        cute->counts[index].negative)),
                  TextTable::Num(posterior, 3),
                  posterior > 0.5 ? "cute" : "not cute",
                  StrFormat("%d", vote.ok() ? vote->positive_votes : -1)});
  }
  table.Print(std::cout);

  // Goodness-of-fit report: how well the two-Poisson mixture describes
  // these counts (large chi2 values flag pairs the model fits poorly).
  std::cout << "\nmodel diagnostics: "
            << DiagnoseFit(cute->counts, *fit).ToString() << "\n";
  return 0;
}
