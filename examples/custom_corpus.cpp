// Using Surveyor on YOUR OWN text and knowledge base — no simulator.
//
// Builds a knowledge base by hand (it could equally be loaded with
// LoadKnowledgeBaseFromFile), registers the vocabulary, feeds hand-written
// documents through the pipeline, and prints the mined opinions. Also
// shows knowledge-base serialization.
#include <iostream>
#include <sstream>

#include "kb/kb_io.h"
#include "surveyor/pipeline.h"
#include "util/table.h"

int main() {
  using namespace surveyor;

  // --- 1. Knowledge base ----------------------------------------------------
  KnowledgeBase kb;
  const TypeId city = kb.AddType("city");
  const EntityId gotham = kb.AddEntity("gotham", city, 5.0).value();
  const EntityId rivertown = kb.AddEntity("rivertown", city, 2.0).value();
  const EntityId hillview = kb.AddEntity("hillview", city, 1.0).value();
  (void)rivertown;
  (void)hillview;
  if (!kb.AddAlias("the gotham metropolis", gotham).ok()) return 1;

  // --- 2. Lexicon: register the open-class vocabulary -----------------------
  Lexicon lexicon;
  lexicon.AddNounWithPlural("city");
  for (const char* adjective : {"big", "safe", "beautiful", "noisy"}) {
    lexicon.AddWord(adjective, Pos::kAdjective);
  }
  for (const char* noun : {"gotham", "rivertown", "hillview", "river",
                           "metropolis", "tourists"}) {
    lexicon.AddWord(noun, Pos::kNoun);
  }
  lexicon.AddWord("visited", Pos::kVerb);

  // --- 3. Documents (imagine these came from a crawl) -----------------------
  std::vector<RawDocument> corpus;
  int64_t next_doc_id = 1;
  for (const char* text : {
      "Gotham is a big city. I think that gotham is noisy.",
      "Gotham is big. We visited gotham. Gotham is not safe!",
      "I don't think that gotham is safe. Gotham is a noisy city.",
      "Rivertown is a beautiful city. Rivertown is not big.",
      "Rivertown is not a big city. rivertown is beautiful.",
      "I don't think that rivertown is never beautiful.",
      "Gotham is big and noisy. The gotham metropolis is not safe.",
      "Rivertown is safe. rivertown is a safe city. Hillview is big.",
      "Gotham is a big city. gotham is big. gotham is not safe."}) {
    RawDocument doc;
    doc.doc_id = next_doc_id++;
    doc.text = text;
    corpus.push_back(std::move(doc));
  }

  // --- 4. Run the pipeline ---------------------------------------------------
  SurveyorConfig config;
  config.min_statements = 2;  // tiny corpus: lower the rho threshold
  SurveyorPipeline pipeline(&kb, &lexicon, config);
  auto result = pipeline.Run(corpus);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }

  TextTable table({"entity", "property", "polarity", "probability"});
  for (const PairOpinion& opinion : result->Opinions()) {
    table.AddRow({kb.entity(opinion.entity).canonical_name, opinion.property,
                  std::string(PolarityName(opinion.polarity)),
                  TextTable::Num(opinion.probability, 3)});
  }
  table.Print(std::cout);

  // --- 5. Serialize the knowledge base --------------------------------------
  std::ostringstream serialized;
  if (SaveKnowledgeBase(kb, serialized).ok()) {
    std::cout << "\nknowledge base on disk would look like:\n"
              << serialized.str();
  }
  return 0;
}
