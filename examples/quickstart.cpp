// Quickstart: mine dominant opinions end to end in ~40 lines.
//
// 1. Build (or load) a knowledge base and lexicon — here we use the tiny
//    built-in demo world, which also simulates a small Web corpus.
// 2. Run the Surveyor pipeline over raw documents.
// 3. Read out <entity, property, polarity, probability> opinions.
#include <iostream>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "surveyor/pipeline.h"

int main() {
  using namespace surveyor;

  // A small world: animals (cute/dangerous) and cities (big), plus a
  // simulated Web corpus written by 8000 authors.
  World world = World::Generate(MakeTinyWorldConfig()).value();
  GeneratorOptions corpus_options;
  corpus_options.author_population = 8000;
  std::vector<RawDocument> corpus =
      CorpusGenerator(&world, corpus_options).Generate();
  std::cout << "corpus: " << corpus.size() << " documents\n";

  // Configure and run the pipeline (Algorithm 1 of the paper).
  SurveyorConfig config;
  config.min_statements = 50;  // the rho threshold
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), config);
  auto result = pipeline.Run(corpus);
  if (!result.ok()) {
    std::cerr << "pipeline failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << "extracted " << result->stats.num_statements
            << " statements; kept "
            << result->stats.num_kept_property_type_pairs
            << " property-type pairs; emitted " << result->stats.num_opinions
            << " opinions\n\n";

  // Print the mined opinions for the seeded entities.
  for (const PairOpinion& opinion : result->Opinions()) {
    const Entity& entity = world.kb().entity(opinion.entity);
    if (entity.popularity < 0.05) continue;  // keep the output short
    std::cout << entity.canonical_name << " is"
              << (opinion.polarity == Polarity::kPositive ? " " : " NOT ")
              << opinion.property << "  (Pr=" << opinion.probability << ")\n";
  }
  return 0;
}
