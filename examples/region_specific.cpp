// Region-specific opinion mining (paper Section 2): "Chinese users might
// have different ideas than American users about what constitutes a big
// city. Surveyor can produce region-specific results if the input is
// restricted to Web sites with specific domain extensions."
//
// Two simulated author populations disagree about which sports are
// "exciting"; restricting the pipeline input by document domain recovers
// each region's dominant opinion.
#include <iostream>

#include "corpus/generator.h"
#include "corpus/worlds.h"
#include "surveyor/pipeline.h"
#include "util/table.h"

int main() {
  using namespace surveyor;

  // One type, one strongly contested property.
  WorldConfig config;
  config.seed = 42;
  TypeSpec sports;
  sports.name = "sport";
  sports.num_entities = 40;
  for (const char* name : {"soccer", "chess", "curling", "rugby", "golf",
                           "boxing", "cricket", "darts"}) {
    EntitySeed seed;
    seed.name = name;
    sports.seeds.push_back(seed);
  }
  PropertySpec exciting;
  exciting.adjective = "exciting";
  exciting.prevalence = 0.4;
  exciting.agreement = 0.7;  // mild consensus: regions can flip it
  // Both camps are vocal (fans and detractors argue), so statement counts
  // track the regional opinion split directly.
  exciting.express_positive = 0.030;
  exciting.express_negative = 0.020;
  sports.properties = {exciting};
  config.types.push_back(std::move(sports));
  World world = World::Generate(config).value();

  // Two regions with opposite dispositions toward "exciting".
  GeneratorOptions options;
  options.author_population = 6000;
  options.regions = {
      RegionSpec{"east", 0.5, +1.6},
      RegionSpec{"west", 0.5, -1.6},
  };
  const std::vector<RawDocument> corpus =
      CorpusGenerator(&world, options).Generate();

  SurveyorConfig pipeline_config;
  pipeline_config.min_statements = 30;
  SurveyorPipeline pipeline(&world.kb(), &world.lexicon(), pipeline_config);
  const TypeId sport = world.kb().TypeByName("sport").value();

  // Mine each region separately by restricting the input documents, plus
  // the blended whole-Web view.
  TextTable table({"sport", "global", "east", "west"});
  std::vector<std::vector<Polarity>> per_domain;
  for (const std::string& domain : {std::string(), std::string("east"),
                                    std::string("west")}) {
    auto result = pipeline.Run(FilterByDomain(corpus, domain));
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    const PropertyTypeResult* pair = result->Find(sport, "exciting");
    if (pair == nullptr) {
      std::cerr << "no evidence for (sport, exciting) in domain '" << domain
                << "'\n";
      return 1;
    }
    per_domain.push_back(pair->polarity);
  }

  int disagreements = 0;
  for (size_t i = 0; i < 8; ++i) {  // the seeded, well-known sports
    const EntityId entity = world.kb().EntitiesOfType(sport)[i];
    table.AddRow({world.kb().entity(entity).canonical_name,
                  std::string(PolarityName(per_domain[0][i])),
                  std::string(PolarityName(per_domain[1][i])),
                  std::string(PolarityName(per_domain[2][i]))});
    if (per_domain[1][i] != per_domain[2][i]) ++disagreements;
  }
  table.Print(std::cout);
  std::cout << "\nThe two regions disagree on " << disagreements
            << " of 8 well-known sports; the global view blends them.\n";
  return 0;
}
